//! Figure 4: the bid–duration relationship the DrAFTS service publishes
//! (paper example: c3.4xlarge in us-east-1 at 10:16 AM on April 18, 2016).

use crate::common::REPRO_SEED;
use drafts_core::graph::BidDurationGraph;
use drafts_core::predictor::{DraftsConfig, DraftsPredictor};
use spotmarket::tracegen::{self, TraceConfig};
use spotmarket::{Az, Catalog, Combo, DAY};

/// Figure 4 output: one graph per probability level.
pub struct Figure4Output {
    /// The combo plotted.
    pub combo: Combo,
    /// Graphs at 0.95 and 0.99.
    pub graphs: Vec<BidDurationGraph>,
}

/// Computes the figure for the paper's combo.
pub fn run() -> Figure4Output {
    let catalog = Catalog::standard();
    let combo = Combo::new(
        // The paper's service displayed its own AZ mapping ("us-east-1a");
        // under this account's letters the first us-east-1 zone is 'b'.
        Az::parse("us-east-1b").expect("first us-east-1 zone"),
        catalog.type_id("c3.4xlarge").expect("catalog type"),
    );
    let history = tracegen::generate(combo, catalog, &TraceConfig::days(60, REPRO_SEED));
    let cfg = DraftsConfig {
        duration_stride: 2,
        ..DraftsConfig::default()
    };
    let predictor = DraftsPredictor::new(&history, cfg);
    // Predict mid-history, where the market still crosses the lower grid
    // levels regularly — the knee of the paper's April 2016 graph comes
    // from exactly such crossings.
    let upto = history.series().index_at(25 * DAY).expect("inside history");
    // The two probability levels are independent full-grid computations;
    // map them in parallel (input order is preserved, so the output is
    // identical to the old serial filter_map).
    let graphs = parallel::par_map(&[0.95, 0.99], |&p| {
        BidDurationGraph::compute(&predictor, upto, p)
    })
    .into_iter()
    .flatten()
    .collect();
    Figure4Output { combo, graphs }
}

/// CSV with one row per (probability, bid, duration) point.
pub fn to_csv(out: &Figure4Output) -> String {
    let mut s = String::from("probability,bid_usd,durability_secs\n");
    for g in &out.graphs {
        for p in g.points() {
            s.push_str(&format!(
                "{},{:.4},{}\n",
                g.probability,
                p.bid.dollars(),
                p.durability_secs
            ));
        }
    }
    s
}

/// Terminal rendering: duration (hours) against bid for each level.
pub fn summarize(out: &Figure4Output) -> String {
    let mut s = format!(
        "Figure 4: bid-duration relationship for {} in {}\n",
        Catalog::standard().spec(out.combo.ty).name,
        out.combo.az.name()
    );
    for g in &out.graphs {
        s.push_str(&format!(
            "  p = {}: {} points, min bid {}, {} -> {} guaranteed hours\n",
            g.probability,
            g.points().len(),
            g.min_bid(),
            g.points().first().map(|p| p.durability_secs / 3600).unwrap_or(0),
            g.points().last().map(|p| p.durability_secs / 3600).unwrap_or(0),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_and_embedded_paths_agree() {
        // Regression guard for a stale `results_run.log`: an earlier build
        // printed the p = 0.95 graph with the min-bid fallback ($1.1751,
        // 24 -> 24 h — exactly the p = 0.99 value) when figure4 ran after
        // the other experiments in `repro all`, but the real QBETS bound
        // ($0.3536, 0 -> 24 h) when invoked standalone. figure4::run is a
        // pure function of REPRO_SEED, so both orders must agree exactly.
        let cold = to_csv(&run());
        let _ = crate::reflexivity::run();
        let _ = crate::launch::run(&crate::launch::LaunchConfig {
            launches: 10,
            warmup: 20 * DAY,
            history_days: 22,
            ..crate::launch::LaunchConfig::figure2()
        });
        let warm = to_csv(&run());
        assert_eq!(
            cold, warm,
            "figure4 output depends on which experiments ran before it"
        );
    }

    #[test]
    fn figure4_graphs_have_the_paper_shape() {
        let out = run();
        assert_eq!(out.graphs.len(), 2, "both probability levels publish");
        for g in &out.graphs {
            // Monotone increasing bid-duration relationship with a knee.
            assert!(g.points().len() > 30);
            assert!(g
                .points()
                .windows(2)
                .all(|w| w[0].durability_secs <= w[1].durability_secs));
            let first = g.points().first().unwrap().durability_secs;
            let last = g.points().last().unwrap().durability_secs;
            assert!(last >= first, "graph must be monotone: {first} -> {last}");
            // The top of the grid reaches multi-hour durability (the paper
            // shows ~14 h at p = 0.95 on three-month histories).
            assert!(last >= 2 * 3600, "top-of-grid durability {last}s");
        }
        // Higher probability shifts the curve right (higher min bid).
        assert!(out.graphs[1].min_bid() >= out.graphs[0].min_bid());
        let csv = to_csv(&out);
        assert!(csv.lines().count() > 60);
        assert!(summarize(&out).contains("c3.4xlarge"));
    }
}
