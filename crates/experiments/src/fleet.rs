//! Fleet chaos experiment: `repro fleet [--quick]`.
//!
//! Boots the sharded fleet (N in-process drafts-serve shards behind the
//! consistent-hash routing front, [`server::Fleet`]) once per chaos
//! scenario, replays a seeded loadgen workload whose requests march
//! across the fault window in virtual time, and audits the fleet's core
//! invariant: **every answer is guaranteed-and-fresh or explicitly
//! `degraded: true`** — a silently stale answer (fresh-looking but not
//! served by the combo's primary owner) is a correctness bug, counted in
//! the `_stale` row and gated to zero in CI.
//!
//! Scenarios kill 0, 1 and 2 shards mid-run (plus one `Slow` fault in
//! the single-kill scenario, so degraded-tagging without failover is
//! exercised too). Faults are evaluated *logically* at the routing layer
//! in virtual time ([`spotmarket::faults::ShardFaults`]), so the whole
//! artifact — per-route checksums, per-shard failover counters,
//! attainment — is a pure function of `(FLEET_SEED, scale)` and CI
//! byte-compares `fleet.csv` across two runs. Real transport crashes
//! (actually stopping a shard's server) take the same failover path and
//! are exercised by the `tests/fleet.rs` integration tests instead,
//! where wall-clock nondeterminism is acceptable.
//!
//! Attainment is measured over the guarantee-bearing routes (`graphs` +
//! `bid`): the share answered 200, in basis points. With replication 2,
//! killing one shard must not cost any guarantee (every key's replica
//! covers it) — `kills1` attainment stays 10000 and CI gates on it.
//! Killing two of three shards deterministically orphans the keys whose
//! whole owner set died; those requests are *refused* (503 +
//! `Retry-After`, `degraded: true`), never served stale, and attainment
//! records the honest cost.

use crate::common::{Scale, REPRO_SEED};
use drafts_core::predictor::DraftsConfig;
use drafts_core::service::ServiceConfig;
use drafts_core::DraftsService;
use loadgen::{RetryPolicy, RunReport, WorkloadConfig};
use server::{Fleet, FleetConfig, Json, Ring};
use simrng::StreamFactory;
use spotmarket::archetype::Archetype;
use spotmarket::faults::ShardFaults;
use spotmarket::tracegen::{generate_with_archetype, TraceConfig};
use spotmarket::{Az, Catalog, Combo, PriceHistory, DAY};
use std::sync::Arc;
use std::time::Duration;

/// Seed domain separating the fleet experiment from the others.
pub const FLEET_SEED: u64 = REPRO_SEED ^ 0xF1EE7;

/// One chaos scenario: how many shards die (and how many merely slow
/// down) inside the run's fault window.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Row label in `fleet.csv`.
    pub name: &'static str,
    /// Shards killed mid-run (unroutable until the end).
    pub kills: usize,
    /// Shards degraded by a `Slow` fault (routable, answers tagged).
    pub slows: usize,
}

/// The fleet workload shape at `scale`.
pub struct FleetPlan {
    /// Fleet size.
    pub shards: usize,
    /// The combo universe registered across the fleet (each combo lands
    /// on its ring owners, primary + replica).
    pub combos: Vec<Combo>,
    /// Loadgen workload (virtual-time marching enabled).
    pub workload: WorkloadConfig,
    /// Virtual time at boot; requests run `now .. now + requests*step`.
    pub now: u64,
    /// Virtual seconds between consecutive planned requests.
    pub step: u64,
    /// The chaos scenarios, run in order.
    pub scenarios: Vec<Scenario>,
}

impl FleetPlan {
    /// End of the run in virtual time.
    pub fn end_now(&self) -> u64 {
        self.now + self.workload.requests as u64 * self.step
    }
}

/// Per-shard failover accounting, read off the front's counters.
#[derive(Debug, Clone, Copy)]
pub struct ShardCounters {
    /// Responses this shard produced.
    pub served: u64,
    /// Responses this shard produced for keys it does not primary-own.
    pub failed_over: u64,
    /// Responses tagged `degraded: true`.
    pub degraded: u64,
    /// Failed probes charged to this shard.
    pub probe_failures: u64,
}

/// One scenario's measured outcome.
pub struct ScenarioOutcome {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The seeded fault plan's label (e.g. `kill@2:1728150+slow@0:1728210`).
    pub fault_label: String,
    /// Aggregated loadgen report.
    pub report: RunReport,
    /// Front-side accounting per shard, captured before the audit pass.
    pub shards: Vec<ShardCounters>,
    /// Requests refused (503 + `Retry-After`) because no owner was
    /// routable — the explicit alternative to a stale answer.
    pub refused: u64,
    /// Transport-level proxy failures (0 here: faults are logical).
    pub proxy_errors: u64,
    /// Guarantee attainment over `graphs` + `bid`, in basis points.
    pub attainment_bp: u64,
    /// Audit violations: fresh-looking answers not served by the
    /// primary owner. The invariant says this is always 0.
    pub silently_stale: u64,
}

/// The experiment's output.
pub struct FleetOutput {
    /// The plan that ran.
    pub plan: FleetPlan,
    /// One outcome per scenario, in plan order.
    pub scenarios: Vec<ScenarioOutcome>,
}

/// The market population spread across the fleet: the serve
/// experiment's six AZ/type pairs, all registered at both scales (the
/// fleet experiment scales by shard count and request count instead).
fn population(catalog: &Catalog) -> Vec<Combo> {
    [
        ("us-east-1c", "c3.4xlarge"),
        ("us-west-2a", "c4.large"),
        ("us-east-1b", "c3.xlarge"),
        ("us-west-1a", "c4.xlarge"),
        ("us-east-1d", "c4.2xlarge"),
        ("us-west-2b", "c3.large"),
    ]
    .iter()
    .map(|&(az, ty)| {
        Combo::new(
            Az::parse(az).expect("known az"),
            catalog.type_id(ty).expect("known type"),
        )
    })
    .collect()
}

/// Builds the plan for `scale`.
pub fn plan(scale: Scale) -> FleetPlan {
    let catalog = Catalog::standard();
    let combos = population(catalog);
    let now = 20 * DAY; // bucket-aligned; the whole run stays in-bucket
    let step = 1;
    let workload = WorkloadConfig {
        requests: scale.pick(300, 600),
        rate_per_sec: 2000.0,
        clients: 4,
        combos: combos.clone(),
        p: 0.95,
        mix: [0.45, 0.35, 0.15, 0.05],
        virtual_now: Some((now, step)),
    };
    FleetPlan {
        shards: scale.pick(3, 4),
        combos,
        workload,
        now,
        step,
        scenarios: vec![
            Scenario {
                name: "kills0",
                kills: 0,
                slows: 0,
            },
            Scenario {
                name: "kills1",
                kills: 1,
                slows: 1,
            },
            Scenario {
                name: "kills2",
                kills: 2,
                slows: 0,
            },
        ],
    }
}

/// Builds one [`DraftsService`] per shard from the ring's ownership map:
/// each combo's seeded history is generated once and registered with
/// every shard that owns it (primary + replica) — the replication that
/// makes failover serve real data instead of a guess.
pub fn build_shard_services(plan: &FleetPlan, ring: &Ring, scale: Scale) -> Vec<Arc<DraftsService>> {
    let catalog = Catalog::standard();
    let histories: Vec<PriceHistory> = plan
        .combos
        .iter()
        .enumerate()
        .map(|(i, &combo)| {
            let archetype = match i % 3 {
                0 => Archetype::Choppy,
                1 => Archetype::Calm,
                _ => Archetype::Spiky,
            };
            generate_with_archetype(
                combo,
                catalog,
                &TraceConfig::days(30, FLEET_SEED ^ (i as u64 + 1)),
                archetype,
            )
        })
        .collect();
    (0..plan.shards)
        .map(|shard| {
            let mut svc = DraftsService::new(ServiceConfig {
                drafts: DraftsConfig {
                    changepoint: None,
                    autocorr: false,
                    duration_stride: scale.pick(6, 2),
                    ..DraftsConfig::default()
                },
                ..ServiceConfig::default()
            });
            for (i, &combo) in plan.combos.iter().enumerate() {
                if ring.owners(combo.key()).contains(&shard) {
                    svc.register(histories[i].clone());
                }
            }
            Arc::new(svc)
        })
        .collect()
}

/// The fleet config for one scenario: faults sampled inside the run's
/// virtual window, everything else the shared defaults.
fn scenario_config(plan: &FleetPlan, scenario: Scenario) -> FleetConfig {
    let mut cfg = FleetConfig::new(plan.shards);
    if scenario.kills + scenario.slows > 0 {
        cfg.faults = ShardFaults::sample(
            FLEET_SEED,
            plan.shards,
            (plan.now, plan.end_now()),
            scenario.kills,
            0,
            scenario.slows,
        );
    }
    cfg
}

/// Runs one scenario: boot, warm, replay, audit, drain.
pub fn run_scenario(plan: &FleetPlan, scenario: Scenario, scale: Scale) -> ScenarioOutcome {
    let cfg = scenario_config(plan, scenario);
    let fault_label = cfg.faults.label();
    let ring = cfg.ring();
    let services = build_shard_services(plan, &ring, scale);
    for service in &services {
        // Warm before boot so the replay is pure steady state per shard.
        service.warm(plan.now);
    }
    let fleet = Fleet::start(services, plan.now, cfg).expect("boot fleet");

    let requests = loadgen::build_plan(
        &plan.workload,
        &StreamFactory::new(FLEET_SEED),
        Catalog::standard(),
    );
    // One retry with a tight backoff cap keeps wall time bounded when a
    // scenario deterministically refuses (kills2): the retry re-asks the
    // identical virtual-time question and gets the identical refusal.
    let retry = RetryPolicy {
        max_retries: 1,
        seed: FLEET_SEED,
        max_backoff: Duration::from_millis(50),
    };
    let report = loadgen::run_with(
        fleet.addr(),
        &requests,
        plan.workload.clients,
        Duration::from_secs(5),
        &retry,
    );

    // Snapshot the front's accounting before the audit adds traffic.
    let counters = fleet.front().counters();
    let shards = (0..plan.shards)
        .map(|i| ShardCounters {
            served: counters.served[i].get(),
            failed_over: counters.failed_over[i].get(),
            degraded: counters.degraded[i].get(),
            probe_failures: counters.probe_failures[i].get(),
        })
        .collect();
    let refused = counters.refused.get();
    let proxy_errors = counters.proxy_errors.get();

    let guarantee = |route: &str| {
        report
            .routes
            .get(route)
            .map_or((0, 0), |t| (t.requests, t.ok))
    };
    let (greq, gok) = guarantee("graphs");
    let (breq, bok) = guarantee("bid");
    let attainment_bp = (gok + bok) * 10_000 / (greq + breq).max(1);

    let silently_stale = audit(&fleet, &ring, plan, plan.end_now());
    fleet.shutdown();

    ScenarioOutcome {
        scenario,
        fault_label,
        report,
        shards,
        refused,
        proxy_errors,
        attainment_bp,
        silently_stale,
    }
}

/// The audit pass: re-asks every combo's graph (and one bid) at the end
/// of the virtual window — *after* every fault onset — and checks the
/// invariant from the other side of the wire: an answer claiming
/// `degraded: false` must come from the combo's primary ring owner, and
/// a refusal must still carry the explicit `degraded: true` marker.
/// Anything else is a silently stale answer.
fn audit(fleet: &Fleet, ring: &Ring, plan: &FleetPlan, now: u64) -> u64 {
    let catalog = Catalog::standard();
    let mut client = loadgen::Client::new(fleet.addr(), Duration::from_secs(5));
    let mut violations = 0u64;
    let fresh_violation = |status: u16, body: &[u8], primary: Option<&str>| {
        let Ok(text) = std::str::from_utf8(body) else {
            return true;
        };
        let Ok(doc) = Json::parse(text) else {
            return true;
        };
        let degraded = doc.get("degraded").and_then(Json::as_bool).unwrap_or(false);
        if status != 200 {
            // A refusal is honest only when explicitly degraded.
            return !degraded;
        }
        if degraded {
            return false; // explicitly tagged: always acceptable
        }
        let served_by = doc.get("served_by").and_then(Json::as_str).unwrap_or("");
        match primary {
            Some(p) => served_by != p,
            None => false,
        }
    };
    for &combo in &plan.combos {
        let path = format!(
            "/v1/graphs/{}/{}/{}?p={}&now={now}",
            combo.az.region().name(),
            combo.az.name(),
            catalog.spec(combo.ty).name,
            plan.workload.p,
        );
        let primary = format!("shard-{}", ring.primary(combo.key()));
        match client.get(&path) {
            Ok((status, body)) => {
                if fresh_violation(status, &body, Some(&primary)) {
                    violations += 1;
                }
            }
            Err(_) => violations += 1,
        }
    }
    // One bid: a fresh-looking quote must be primary-served too. The
    // quoted combo is the winner's, read back from the response.
    let path = format!("/v1/bid?duration=3600&p={}&now={now}", plan.workload.p);
    match client.get(&path) {
        Ok((status, body)) => {
            let primary = std::str::from_utf8(&body)
                .ok()
                .and_then(|text| Json::parse(text).ok())
                .and_then(|doc| {
                    let az = Az::parse(doc.get("az")?.as_str()?)?;
                    let ty = catalog.type_id(doc.get("type")?.as_str()?)?;
                    Some(format!("shard-{}", ring.primary(Combo::new(az, ty).key())))
                });
            if fresh_violation(status, &body, primary.as_deref()) {
                violations += 1;
            }
        }
        Err(_) => violations += 1,
    }
    violations
}

/// Runs every scenario in plan order.
pub fn run(scale: Scale) -> FleetOutput {
    let plan = plan(scale);
    let scenarios = plan
        .scenarios
        .iter()
        .map(|&scenario| run_scenario(&plan, scenario, scale))
        .collect();
    FleetOutput { plan, scenarios }
}

/// Renders the deterministic artifact (`fleet.csv`): per-route tallies
/// per scenario, per-shard failover accounting, attainment, the stale
/// audit, and the run configuration. A pure function of
/// `(FLEET_SEED, scale)`; CI runs the experiment twice and
/// byte-compares this file.
pub fn deterministic_csv(out: &FleetOutput) -> String {
    let mut csv = String::from("scenario,route,requests,ok,body_bytes,checksum\n");
    for outcome in &out.scenarios {
        let name = outcome.scenario.name;
        for (route, tally) in &outcome.report.routes {
            csv.push_str(&format!(
                "{name},{route},{},{},{},{:016x}\n",
                tally.requests, tally.ok, tally.body_bytes, tally.checksum
            ));
        }
        for (i, shard) in outcome.shards.iter().enumerate() {
            csv.push_str(&format!(
                "{name},_shard:shard-{i},served={};failed_over={};degraded={};probe_failures={},,,\n",
                shard.served, shard.failed_over, shard.degraded, shard.probe_failures
            ));
        }
        let total = |f: fn(&ShardCounters) -> u64| outcome.shards.iter().map(f).sum::<u64>();
        csv.push_str(&format!(
            "{name},_fleet,refused={};proxy_errors={};retries_503={};failed_over_total={};degraded_total={},,,\n",
            outcome.refused,
            outcome.proxy_errors,
            outcome.report.retries_503,
            total(|s| s.failed_over),
            total(|s| s.degraded),
        ));
        csv.push_str(&format!(
            "{name},_bid,attainment_bp={},,,\n",
            outcome.attainment_bp
        ));
        csv.push_str(&format!(
            "{name},_stale,silently_stale={},,,\n",
            outcome.silently_stale
        ));
        csv.push_str(&format!("{name},_faults,{},,,\n", outcome.fault_label));
    }
    csv.push_str(&format!(
        "_config,shards={};replication=2;requests={};clients={};p={};now={};step={};seed={},,,\n",
        out.plan.shards,
        out.plan.workload.requests,
        out.plan.workload.clients,
        out.plan.workload.p,
        out.plan.now,
        out.plan.step,
        FLEET_SEED,
    ));
    csv
}

/// One-paragraph human summary per scenario for stdout.
pub fn summarize(out: &FleetOutput) -> String {
    let mut text = String::new();
    for outcome in &out.scenarios {
        let total = |f: fn(&ShardCounters) -> u64| outcome.shards.iter().map(f).sum::<u64>();
        text.push_str(&format!(
            "fleet {}: {} requests over {} shards ({}), \
             attainment {}bp, {} failed over, {} degraded, {} refused, \
             {} retried, silently stale {}\n",
            outcome.scenario.name,
            outcome.report.total(),
            out.plan.shards,
            outcome.fault_label,
            outcome.attainment_bp,
            total(|s| s.failed_over),
            total(|s| s.degraded),
            outcome.refused,
            outcome.report.retries_503,
            outcome.silently_stale,
        ));
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fleet_run_holds_the_freshness_invariant() {
        let out = run(Scale::Quick);
        assert_eq!(out.scenarios.len(), 3);
        for outcome in &out.scenarios {
            // The tentpole invariant: zero silently stale answers, in
            // every scenario, chaos included.
            assert_eq!(
                outcome.silently_stale, 0,
                "{}: stale answers leaked",
                outcome.scenario.name
            );
            assert_eq!(outcome.proxy_errors, 0, "logical faults never hit transport");
        }
        let by_name = |name: &str| {
            out.scenarios
                .iter()
                .find(|o| o.scenario.name == name)
                .expect("scenario ran")
        };
        // Replication 2 absorbs one kill without losing a guarantee.
        assert_eq!(by_name("kills0").attainment_bp, 10_000);
        assert_eq!(by_name("kills1").attainment_bp, 10_000);
        let kills1 = by_name("kills1");
        let total = |o: &ScenarioOutcome, f: fn(&ShardCounters) -> u64| {
            o.shards.iter().map(f).sum::<u64>()
        };
        assert!(
            total(kills1, |s| s.failed_over) > 0,
            "a kill must force failover"
        );
        assert!(
            total(kills1, |s| s.degraded) > 0,
            "failover answers must be tagged"
        );
        assert_eq!(total(by_name("kills0"), |s| s.failed_over), 0);
        assert_eq!(by_name("kills0").refused, 0);

        let csv = deterministic_csv(&out);
        assert!(csv.starts_with("scenario,route,requests,ok,body_bytes,checksum\n"));
        for needle in [
            "kills1,_bid,attainment_bp=10000",
            "kills0,_stale,silently_stale=0",
            "kills1,_stale,silently_stale=0",
            "kills2,_stale,silently_stale=0",
            "_config,shards=3",
        ] {
            assert!(csv.contains(needle), "missing {needle} in\n{csv}");
        }
        assert!(summarize(&out).contains("silently stale 0"));
    }
}
