//! Table 1: backtested correctness fractions for DrAFTS, On-demand,
//! AR(1) and Empirical-CDF across the AZ x type universe.

use crate::common::{Scale, REPRO_SEED};
use backtest::correctness::{self, CorrectnessRow};
use backtest::engine::{self, BacktestConfig};
use backtest::report::{self, Table};
use backtest::BacktestResult;

/// The backtest configuration for a given scale and probability target.
pub fn backtest_config(scale: Scale, probability: f64) -> BacktestConfig {
    BacktestConfig {
        seed: REPRO_SEED,
        days: scale.pick(45, 90),
        warmup_days: scale.pick(18, 30),
        requests_per_combo: scale.pick(60, 300),
        probability,
        combo_limit: scale.pick(Some(48), None),
        ..BacktestConfig::default()
    }
}

/// Table 1 output: the raw backtest plus its rendered rows.
pub struct Table1Output {
    /// Full per-combo results (shared with Figure 1 and Table 4).
    pub result: BacktestResult,
    /// The bucketed correctness rows.
    pub rows: Vec<CorrectnessRow>,
}

/// Runs the Table 1 backtest at the paper's 0.99 target.
pub fn run(scale: Scale) -> Table1Output {
    let cfg = backtest_config(scale, 0.99);
    let result = engine::run(&cfg);
    let rows = correctness::table_rows(&result);
    Table1Output { result, rows }
}

/// Renders the paper-style table.
pub fn render(out: &Table1Output) -> Table {
    report::table1(&out.rows, out.result.probability, out.result.combos.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use backtest::engine::Policy;

    #[test]
    fn quick_table1_reproduces_the_paper_ordering() {
        let out = run(Scale::Quick);
        assert_eq!(out.result.combos.len(), 48);
        let row = |p: Policy| {
            out.rows
                .iter()
                .find(|r| r.policy == p)
                .copied()
                .expect("row present")
        };
        let drafts = row(Policy::Drafts);
        let od = row(Policy::OnDemand);
        let ecdf = row(Policy::EmpiricalCdf);
        // The paper's headline orderings: DrAFTS misses the target for
        // (almost) no combos; On-demand misses for a large share; the
        // empirical CDF sits in between.
        // Quick scale runs 60 requests per combo, so a single unlucky miss
        // (fraction 59/60 = 0.983) already drops a combo below the 0.99
        // bucket; the paper-scale 300-request run is the calibrated one.
        assert!(
            drafts.below <= 0.15,
            "DrAFTS below-target share {}",
            drafts.below
        );
        assert!(
            od.below >= drafts.below,
            "On-demand ({}) must miss at least as often as DrAFTS ({})",
            od.below,
            drafts.below
        );
        assert!(od.below > 0.1, "On-demand miss share {}", od.below);
        // The empirical CDF misses for a substantial share too (paper: 6%;
        // on the synthetic substrate it lands nearer On-demand — see
        // EXPERIMENTS.md for the deviation discussion).
        assert!(
            ecdf.below > drafts.below,
            "ECDF ({}) must miss more often than DrAFTS ({})",
            ecdf.below,
            drafts.below
        );
        // Render sanity.
        let t = render(&out);
        assert_eq!(t.len(), 4);
        assert!(t.render().contains("DrAFTS"));
    }
}
