//! Serving-layer experiment: `repro serve`.
//!
//! Boots a drafts-serve instance on an ephemeral loopback port over a
//! multi-combo [`DraftsService`], replays the seeded open-loop loadgen
//! plan against it, and writes two artifacts with a deliberate
//! determinism boundary:
//!
//! * `serve.csv` — per-route request counts, 200 counts, body bytes and
//!   order-independent response checksums, plus the run configuration.
//!   A pure function of the seed: CI runs the experiment twice and
//!   byte-compares this file.
//! * `serve_latency.csv` — throughput and log-bucketed latency quantiles
//!   (p50/p95/p99/max), one aggregate row plus one row per route from
//!   the harness's per-route histograms. The timing columns are wall
//!   clock and machine-dependent; only the `route,requests` columns are
//!   deterministic (CI cuts and compares those, as with `profile.csv`).
//!
//! The split exists because response *content* under virtual time is
//! reproducible while response *timing* never is; mixing them in one
//! artifact would force CI to diff nothing.

use crate::common::{Scale, REPRO_SEED};
use drafts_core::predictor::DraftsConfig;
use drafts_core::service::ServiceConfig;
use drafts_core::DraftsService;
use loadgen::{RunReport, WorkloadConfig};
use server::{DrainReport, Router, Server, ServerConfig};
use simrng::StreamFactory;
use spotmarket::archetype::Archetype;
use spotmarket::tracegen::{generate_with_archetype, TraceConfig};
use spotmarket::{Az, Catalog, Combo, DAY};
use std::sync::Arc;
use std::time::Duration;

/// Seed domain separating the serving experiment (and the profile
/// experiment built on its plan) from the others.
pub const SERVE_SEED: u64 = REPRO_SEED ^ 0x5E17E;

/// The serving workload shape at `scale`.
pub struct ServePlan {
    /// Markets registered with the service.
    pub combos: Vec<Combo>,
    /// Loadgen workload.
    pub workload: WorkloadConfig,
    /// Server tuning.
    pub server: ServerConfig,
    /// Virtual serving time.
    pub now: u64,
}

/// The experiment's output.
pub struct ServeOutput {
    /// The plan that ran.
    pub plan: ServePlan,
    /// Aggregated loadgen report.
    pub report: RunReport,
    /// Drain accounting from server shutdown.
    pub drain: DrainReport,
    /// Slow-path lock acquisitions during the workload (after warm-up).
    /// The lock-free read path's acceptance gate: must be 0 — every
    /// request of a warm steady-state run is a pure snapshot read.
    pub reader_locks_steady: u64,
    /// Snapshot publications during the workload (after warm-up). 0 in
    /// steady state: nothing republishes inside one refresh bucket.
    pub swaps_steady: u64,
}

/// The market population: AZ/type pairs in the spirit of the Table 1
/// sweep, kept small enough that trace generation is not the experiment.
fn population(scale: Scale, catalog: &Catalog) -> Vec<Combo> {
    let pairs: &[(&str, &str)] = &[
        ("us-east-1c", "c3.4xlarge"),
        ("us-west-2a", "c4.large"),
        ("us-east-1b", "c3.xlarge"),
        ("us-west-1a", "c4.xlarge"),
        ("us-east-1d", "c4.2xlarge"),
        ("us-west-2b", "c3.large"),
    ];
    let n = scale.pick(3, pairs.len());
    pairs[..n]
        .iter()
        .map(|&(az, ty)| {
            Combo::new(
                Az::parse(az).expect("known az"),
                catalog.type_id(ty).expect("known type"),
            )
        })
        .collect()
}

/// Builds the plan for `scale`.
pub fn plan(scale: Scale) -> ServePlan {
    let catalog = Catalog::standard();
    let combos = population(scale, catalog);
    let workload = WorkloadConfig {
        requests: scale.pick(300, 2000),
        rate_per_sec: scale.pick(2000.0, 4000.0),
        clients: 4,
        combos: combos.clone(),
        p: 0.95,
        mix: [0.35, 0.5, 0.1, 0.05],
        virtual_now: None,
    };
    // The accept queue comfortably exceeds the client count so the smoke
    // run never sheds: shed 503s are timing-dependent and would poison
    // the deterministic artifact. Saturation behaviour is exercised by
    // the end-to-end tests instead.
    let server = ServerConfig {
        workers: 4,
        accept_queue: 64,
        connection_deadline: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    ServePlan {
        combos,
        workload,
        server,
        now: 20 * DAY,
    }
}

/// Builds the multi-combo service the server fronts.
pub fn build_service(combos: &[Combo], scale: Scale) -> DraftsService {
    let catalog = Catalog::standard();
    let mut svc = DraftsService::new(ServiceConfig {
        drafts: DraftsConfig {
            changepoint: None,
            autocorr: false,
            duration_stride: scale.pick(6, 2),
            ..DraftsConfig::default()
        },
        ..ServiceConfig::default()
    });
    for (i, &combo) in combos.iter().enumerate() {
        let archetype = match i % 3 {
            0 => Archetype::Choppy,
            1 => Archetype::Calm,
            _ => Archetype::Spiky,
        };
        svc.register(generate_with_archetype(
            combo,
            catalog,
            &TraceConfig::days(30, SERVE_SEED ^ (i as u64 + 1)),
            archetype,
        ));
    }
    svc
}

/// A booted serving stack: the seeded multi-combo service built, warmed,
/// and fronted by a live loopback server. This is the boot sequence
/// `repro serve`, `repro profile` and `repro bench` all share — one copy
/// of the warm/bind logic instead of one per experiment.
pub struct Booted {
    /// The plan the boot realised (tuning knobs included).
    pub plan: ServePlan,
    /// The warmed service behind the server.
    pub service: Arc<DraftsService>,
    /// The live server on an ephemeral loopback port.
    pub server: Server,
    /// Slow-path lock count right after warming (steady-state baseline).
    pub locks_warm: u64,
    /// Snapshot-swap count right after warming (steady-state baseline).
    pub swaps_warm: u64,
}

/// Boots `plan`: build the service, pre-warm the serving bucket's
/// snapshots, bind a loopback server. Warming runs before the server
/// exists so the measured workload is pure steady state — every request
/// resolves against the published snapshot without locking or computing.
/// This is the production shape: the paper's service recomputes on its
/// 15-minute schedule, not on a client's first request.
pub fn boot(plan: ServePlan, scale: Scale) -> Booted {
    let service = Arc::new(build_service(&plan.combos, scale));
    service.warm(plan.now);
    let locks_warm = service.read_lock_count();
    let swaps_warm = service.snapshot_swap_count();
    let router = Router::new(service.clone(), plan.now);
    let server = Server::start(router, plan.server.clone()).expect("bind loopback");
    Booted {
        plan,
        service,
        server,
        locks_warm,
        swaps_warm,
    }
}

impl Booted {
    /// The seeded loadgen request plan for this boot's workload — a pure
    /// function of `(SERVE_SEED, plan.workload)`.
    pub fn request_plan(&self) -> Vec<loadgen::Planned> {
        loadgen::build_plan(
            &self.plan.workload,
            &StreamFactory::new(SERVE_SEED),
            Catalog::standard(),
        )
    }

    /// Replays the seeded request plan against the live server.
    pub fn replay(&self) -> RunReport {
        let requests = self.request_plan();
        loadgen::run(
            self.server.addr(),
            &requests,
            self.plan.workload.clients,
            Duration::from_secs(5),
        )
    }

    /// Slow-path lock acquisitions since warm-up finished.
    pub fn locks_steady(&self) -> u64 {
        self.service.read_lock_count() - self.locks_warm
    }

    /// Snapshot publications since warm-up finished.
    pub fn swaps_steady(&self) -> u64 {
        self.service.snapshot_swap_count() - self.swaps_warm
    }
}

/// Runs the experiment: boot, warm, replay, drain.
pub fn run(scale: Scale) -> ServeOutput {
    let b = boot(plan(scale), scale);
    let report = b.replay();
    let reader_locks_steady = b.locks_steady();
    let swaps_steady = b.swaps_steady();
    let drain = b.server.shutdown();
    ServeOutput {
        plan: b.plan,
        report,
        drain,
        reader_locks_steady,
        swaps_steady,
    }
}

/// Renders the deterministic artifact (`serve.csv`).
pub fn deterministic_csv(out: &ServeOutput) -> String {
    let mut csv = String::from("route,requests,ok,body_bytes,checksum\n");
    for (route, tally) in &out.report.routes {
        csv.push_str(&format!(
            "{route},{},{},{},{:016x}\n",
            tally.requests, tally.ok, tally.body_bytes, tally.checksum
        ));
    }
    csv.push_str(&format!(
        "_total,{},{},{},{:016x}\n",
        out.report.total(),
        out.report.routes.values().map(|t| t.ok).sum::<u64>(),
        out.report.routes.values().map(|t| t.body_bytes).sum::<u64>(),
        out.report
            .routes
            .values()
            .fold(0u64, |acc, t| acc.wrapping_add(t.checksum))
    ));
    csv.push_str(&format!(
        "_steady,reader_locks={};snapshot_swaps={},,,\n",
        out.reader_locks_steady, out.swaps_steady
    ));
    csv.push_str(&format!(
        "_config,combos={};requests={};clients={};p={};now={};shed={};panics={},,,\n",
        out.plan.combos.len(),
        out.plan.workload.requests,
        out.plan.workload.clients,
        out.plan.workload.p,
        out.plan.now,
        out.drain.shed,
        out.drain.handler_panics,
    ));
    csv
}

/// Renders the wall-clock artifact (`serve_latency.csv`): one `_all`
/// aggregate row plus one row per route, from the loadgen harness's
/// per-route histograms. Columns 1–2 (`route,requests`) are deterministic
/// (CI cuts them out and byte-compares, like `profile.csv`); the timing
/// columns are wall clock and are cut before the diff.
pub fn latency_csv(out: &ServeOutput) -> String {
    let elapsed = out.report.elapsed.as_secs_f64();
    let row = |route: &str, requests: u64, h: &obs::LogHistogram| {
        let q = |p: f64| h.quantile_ns(p).unwrap_or(0) as f64 / 1_000.0;
        format!(
            "{route},{requests},{elapsed:.3},{:.1},{:.1},{:.1},{:.1},{:.1}\n",
            requests as f64 / elapsed.max(1e-9),
            q(0.50),
            q(0.95),
            q(0.99),
            h.max_ns() as f64 / 1_000.0,
        )
    };
    let mut csv =
        String::from("route,requests,elapsed_secs,throughput_rps,p50_us,p95_us,p99_us,max_us\n");
    csv.push_str(&row("_all", out.report.total(), &out.report.latency));
    for (route, h) in &out.report.route_latency {
        let requests = out.report.routes.get(route).map_or(0, |t| t.requests);
        csv.push_str(&row(route, requests, h));
    }
    csv
}

/// One-paragraph human summary for stdout.
pub fn summarize(out: &ServeOutput) -> String {
    let h = &out.report.latency;
    let q = |p: f64| h.quantile_ns(p).unwrap_or(0) as f64 / 1_000.0;
    format!(
        "serve: {} requests over {} combos in {:.2}s ({:.0} req/s), \
         p50 {:.0}us p95 {:.0}us p99 {:.0}us max {:.0}us; \
         {} non-200, {} shed, {} admitted = {} served\n",
        out.report.total(),
        out.plan.combos.len(),
        out.report.elapsed.as_secs_f64(),
        out.report.throughput(),
        q(0.50),
        q(0.95),
        q(0.99),
        h.max_ns() as f64 / 1_000.0,
        out.report.non_ok,
        out.drain.shed,
        out.drain.admitted,
        out.drain.served,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_serve_run_is_deterministic_and_clean() {
        let a = run(Scale::Quick);
        // Every planned request completed with a 200: the smoke plan is
        // sized to never shed, and every route resolves on this service.
        assert_eq!(a.report.total(), a.plan.workload.requests as u64);
        assert_eq!(a.report.non_ok, 0, "unexpected non-200s");
        assert_eq!(a.drain.shed, 0, "smoke plan must not shed");
        assert_eq!(a.drain.handler_panics, 0);
        assert_eq!(a.drain.admitted, a.drain.served, "drain dropped work");
        // The lock-free read-path acceptance gate: a warm steady-state
        // run never enters the slow path and never republishes.
        assert_eq!(a.reader_locks_steady, 0, "steady-state reads took a lock");
        assert_eq!(a.swaps_steady, 0, "steady-state run republished");

        let b = run(Scale::Quick);
        assert_eq!(
            deterministic_csv(&a),
            deterministic_csv(&b),
            "serve.csv must be byte-deterministic run to run"
        );
        // The latency artifact parses but its timing half is not
        // compared — wall clock. One aggregate row plus one per route.
        let lat = latency_csv(&a);
        assert!(lat.starts_with("route,requests,elapsed_secs"));
        assert_eq!(lat.lines().count(), 6, "header + _all + 4 routes");
        for route in ["_all", "graphs", "bid", "health", "metrics"] {
            assert!(
                lat.lines().any(|l| l.starts_with(&format!("{route},"))),
                "missing {route} row in {lat}"
            );
        }
        // The per-route histograms decompose the aggregate exactly.
        let per_route: u64 = a.report.route_latency.values().map(|h| h.count()).sum();
        assert_eq!(per_route, a.report.latency.count());
        assert!(summarize(&a).contains("admitted"));
    }
}
