//! Hourly spot billing (paper §2.1).
//!
//! "When an instance is executing, its user is charged the current market
//! price that occurs at the beginning of each hour of execution for that
//! hour's duration. When the instance is terminated by its user, the user
//! is charged for the complete hour of execution in which the termination
//! occurs" — i.e. user terminations round *up*. Under the 2016-era policy,
//! when *Amazon* terminates an instance because of price, the partial final
//! hour is not charged (completed hours are). The worst-case financial risk
//! of a request is the maximum bid for every (rounded-up) hour (§2.1).

use crate::history::PriceHistory;
use crate::price::Price;
use crate::HOUR;

/// Why (or whether) an instance stopped running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndReason {
    /// The user terminated it (partial hour rounds up).
    User,
    /// Amazon terminated it on a price crossing (partial hour free).
    Price,
    /// Still running at the accounting horizon (accrued hours round up).
    Running,
}

/// Number of billed hours for a run of `duration` seconds ending for
/// `reason`.
pub fn billed_hours(duration: u64, reason: EndReason) -> u64 {
    match reason {
        EndReason::User | EndReason::Running => duration.div_ceil(HOUR).max(1),
        EndReason::Price => duration / HOUR,
    }
}

/// Actual cost of an instance: the market price at each billed hour start.
///
/// `start` is the launch time; `duration` the run length in seconds. Hours
/// beyond the recorded history reuse the last known price (step semantics).
pub fn instance_cost(
    history: &PriceHistory,
    start: u64,
    duration: u64,
    reason: EndReason,
) -> Price {
    let hours = billed_hours(duration, reason);
    let mut total = Price::ZERO;
    for k in 0..hours {
        let at = start + k * HOUR;
        total += history
            .price_at(at)
            .expect("billing requires the history to cover the launch time");
    }
    total
}

/// Worst-case (risked) cost: the maximum bid charged for every billed hour
/// — what Table 2/3's "Maximum Bid Cost" column reports.
pub fn worst_case_cost(bid: Price, duration: u64, reason: EndReason) -> Price {
    bid.times(billed_hours(duration, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Az, Combo, Region, TypeId};
    use tsforecast::TimeSeries;

    fn flat_history(tick_price: u64) -> PriceHistory {
        let series: TimeSeries = (0..200u64).map(|i| (i * 300, tick_price)).collect();
        PriceHistory::new(
            Combo::new(Az::new(Region::UsWest2, 0), TypeId(0)),
            series,
        )
    }

    #[test]
    fn user_termination_rounds_up() {
        assert_eq!(billed_hours(1, EndReason::User), 1);
        assert_eq!(billed_hours(3600, EndReason::User), 1);
        assert_eq!(billed_hours(3601, EndReason::User), 2);
        assert_eq!(billed_hours(0, EndReason::User), 1, "minimum one hour");
        // The 3300-second experimental duration (paper §4.2) bills 1 hour.
        assert_eq!(billed_hours(3300, EndReason::User), 1);
    }

    #[test]
    fn price_termination_forgives_partial_hour() {
        assert_eq!(billed_hours(1800, EndReason::Price), 0);
        assert_eq!(billed_hours(3600, EndReason::Price), 1);
        assert_eq!(billed_hours(2 * 3600 + 100, EndReason::Price), 2);
    }

    #[test]
    fn running_instances_accrue_rounded_up() {
        assert_eq!(billed_hours(5400, EndReason::Running), 2);
    }

    #[test]
    fn cost_sums_hour_start_prices() {
        let h = flat_history(1000);
        // 2.5 hours, user terminated -> 3 hours at 1000 ticks.
        let c = instance_cost(&h, 0, 9000, EndReason::User);
        assert_eq!(c, Price::from_ticks(3000));
        // Price terminated at 2.5h -> 2 hours.
        let c = instance_cost(&h, 0, 9000, EndReason::Price);
        assert_eq!(c, Price::from_ticks(2000));
    }

    #[test]
    fn cost_tracks_price_changes_at_hour_starts() {
        // Price doubles at t = 3600.
        let series: TimeSeries = vec![(0u64, 100u64), (3600, 200)].into_iter().collect();
        let h = PriceHistory::new(
            Combo::new(Az::new(Region::UsWest2, 0), TypeId(0)),
            series,
        );
        let c = instance_cost(&h, 0, 2 * 3600, EndReason::User);
        assert_eq!(c, Price::from_ticks(300), "100 for hour 1, 200 for hour 2");
    }

    #[test]
    fn mid_hour_launch_uses_price_in_effect() {
        let series: TimeSeries = vec![(0u64, 100u64), (4000, 500)].into_iter().collect();
        let h = PriceHistory::new(
            Combo::new(Az::new(Region::UsWest2, 0), TypeId(0)),
            series,
        );
        // Launch at t=1800: hour starts at 1800 (price 100) and 5400 (500).
        let c = instance_cost(&h, 1800, 2 * 3600, EndReason::User);
        assert_eq!(c, Price::from_ticks(600));
    }

    #[test]
    #[should_panic(expected = "cover the launch time")]
    fn cost_requires_history_coverage() {
        let h = flat_history(100);
        // History starts at t=0; hour start at t=-... launch before start.
        let series_start_late: TimeSeries = vec![(5000u64, 100u64)].into_iter().collect();
        let h2 = PriceHistory::new(h.combo(), series_start_late);
        instance_cost(&h2, 0, 3600, EndReason::User);
    }

    #[test]
    fn worst_case_uses_the_bid() {
        let bid = Price::from_dollars(0.5);
        assert_eq!(
            worst_case_cost(bid, 9000, EndReason::User),
            Price::from_dollars(1.5)
        );
        assert_eq!(
            worst_case_cost(bid, 1800, EndReason::Price),
            Price::ZERO
        );
    }
}
