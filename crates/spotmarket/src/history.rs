//! Price histories and the queries DrAFTS needs from them.
//!
//! A [`PriceHistory`] wraps a [`TimeSeries`] of tick prices for one combo
//! and adds the two queries everything downstream is built on:
//!
//! * `price_at(t)` — the market price in effect at `t` (step semantics),
//! * `first_at_or_after_geq(i, bid)` — the first update index `>= i` whose
//!   price is `>=` the bid. This powers the DrAFTS duration step ("the
//!   duration from when the prediction is made until the market price
//!   exceeds it", §3.2) and backtest survival checks; it is answered in
//!   O(log n) by a max segment tree built once over the immutable history.
//!
//! Termination semantics: the paper notes Amazon "may or may not" terminate
//! an instance whose bid exactly equals the market price (§3.2) — DrAFTS
//! therefore adds one tick to clear the bound. We adopt the conservative
//! reading throughout: an instance is terminated as soon as
//! `market price >= bid`, and a launch succeeds only if `bid > price`.

use crate::price::Price;
use crate::types::Combo;
use tsforecast::TimeSeries;

/// Outcome of holding a bid from a start time onward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Survival {
    /// The bid did not exceed the market price at the start time; the
    /// request is rejected (no instance starts).
    Rejected,
    /// The market price reached the bid at `at`; an instance would be
    /// terminated then.
    Terminated {
        /// Time of the terminating price update.
        at: u64,
    },
    /// No terminating update occurs before the history ends at `until`
    /// (right-censored observation).
    Censored {
        /// Last covered timestamp.
        until: u64,
    },
}

impl Survival {
    /// The survival duration from `start`, treating censoring as
    /// survival-to-horizon. `None` for rejected requests.
    pub fn duration_from(self, start: u64) -> Option<u64> {
        match self {
            Survival::Rejected => None,
            Survival::Terminated { at } => Some(at.saturating_sub(start)),
            Survival::Censored { until } => Some(until.saturating_sub(start)),
        }
    }

    /// Whether the outcome is a survival of at least `d` seconds after
    /// `start` (censored outcomes count as surviving the observed span).
    pub fn survives_for(self, start: u64, d: u64) -> bool {
        match self {
            Survival::Rejected => false,
            Survival::Terminated { at } => at.saturating_sub(start) >= d,
            Survival::Censored { .. } => true,
        }
    }
}

/// An immutable price history for one combo with O(log n) survival queries.
#[derive(Debug, Clone)]
pub struct PriceHistory {
    combo: Combo,
    series: TimeSeries,
    /// Max segment tree over the value array (1-indexed, size 2*cap).
    tree: Vec<u64>,
    cap: usize,
}

impl PriceHistory {
    /// Builds a history (and its query index) from a finished series.
    pub fn new(combo: Combo, series: TimeSeries) -> Self {
        let n = series.len();
        let cap = n.max(1).next_power_of_two();
        let mut tree = vec![0u64; 2 * cap];
        for (i, &v) in series.values().iter().enumerate() {
            tree[cap + i] = v;
        }
        for i in (1..cap).rev() {
            tree[i] = tree[2 * i].max(tree[2 * i + 1]);
        }
        Self {
            combo,
            series,
            tree,
            cap,
        }
    }

    /// The combo this history belongs to.
    pub fn combo(&self) -> Combo {
        self.combo
    }

    /// The underlying update series (values are price ticks).
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Number of price updates.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Price of the `i`-th update.
    pub fn price(&self, i: usize) -> Price {
        Price::from_ticks(self.series.values()[i])
    }

    /// Timestamp of the `i`-th update.
    pub fn time(&self, i: usize) -> u64 {
        self.series.times()[i]
    }

    /// Market price in effect at `t`, if the history has started by then.
    pub fn price_at(&self, t: u64) -> Option<Price> {
        self.series.value_at(t).map(Price::from_ticks)
    }

    /// Largest observed price.
    pub fn max_price(&self) -> Option<Price> {
        (!self.is_empty()).then(|| Price::from_ticks(self.tree[1]))
    }

    /// Smallest observed price.
    pub fn min_price(&self) -> Option<Price> {
        self.series.values().iter().min().map(|&v| Price::from_ticks(v))
    }

    /// First update index `>= from` whose price is `>= bid`, in O(log n).
    pub fn first_at_or_after_geq(&self, from: usize, bid: Price) -> Option<usize> {
        let n = self.len();
        if from >= n {
            return None;
        }
        let threshold = bid.ticks();
        if self.tree[1] < threshold {
            return None;
        }
        // Descend from the root looking for the leftmost leaf >= threshold
        // within [from, n).
        self.descend(1, 0, self.cap, from, threshold)
            .filter(|&i| i < n)
    }

    fn descend(&self, node: usize, lo: usize, hi: usize, from: usize, threshold: u64) -> Option<usize> {
        if hi <= from || self.tree[node] < threshold {
            return None;
        }
        if hi - lo == 1 {
            return Some(lo);
        }
        let mid = (lo + hi) / 2;
        self.descend(2 * node, lo, mid, from, threshold)
            .or_else(|| self.descend(2 * node + 1, mid, hi, from, threshold))
    }

    /// Survival outcome for an instance requested at `t` with maximum bid
    /// `bid` (see module docs for the exact semantics).
    pub fn survival(&self, t: u64, bid: Price) -> Survival {
        let Some(current_idx) = self.series.index_at(t) else {
            // History has not started: treat as rejected (no market yet).
            return Survival::Rejected;
        };
        if Price::from_ticks(self.series.values()[current_idx]) >= bid {
            return Survival::Rejected;
        }
        match self.first_at_or_after_geq(current_idx + 1, bid) {
            Some(i) => Survival::Terminated {
                at: self.series.times()[i],
            },
            None => Survival::Censored {
                until: *self
                    .series
                    .times()
                    .last()
                    .expect("non-empty by index_at"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Az, Region, TypeId};

    fn combo() -> Combo {
        Combo::new(Az::new(Region::UsWest2, 0), TypeId(3))
    }

    fn history(points: &[(u64, u64)]) -> PriceHistory {
        PriceHistory::new(combo(), points.iter().copied().collect())
    }

    #[test]
    fn empty_history() {
        let h = history(&[]);
        assert!(h.is_empty());
        assert_eq!(h.price_at(100), None);
        assert_eq!(h.max_price(), None);
        assert_eq!(h.first_at_or_after_geq(0, Price::from_ticks(1)), None);
        assert_eq!(h.survival(0, Price::from_ticks(10)), Survival::Rejected);
    }

    #[test]
    fn price_at_and_extremes() {
        let h = history(&[(0, 100), (300, 150), (600, 80)]);
        assert_eq!(h.price_at(0), Some(Price::from_ticks(100)));
        assert_eq!(h.price_at(299), Some(Price::from_ticks(100)));
        assert_eq!(h.price_at(10_000), Some(Price::from_ticks(80)));
        assert_eq!(h.max_price(), Some(Price::from_ticks(150)));
        assert_eq!(h.min_price(), Some(Price::from_ticks(80)));
    }

    #[test]
    fn first_at_or_after_geq_basic() {
        let h = history(&[(0, 100), (300, 150), (600, 80), (900, 200)]);
        assert_eq!(h.first_at_or_after_geq(0, Price::from_ticks(100)), Some(0));
        assert_eq!(h.first_at_or_after_geq(1, Price::from_ticks(100)), Some(1));
        assert_eq!(h.first_at_or_after_geq(2, Price::from_ticks(100)), Some(3));
        assert_eq!(h.first_at_or_after_geq(2, Price::from_ticks(201)), None);
        assert_eq!(h.first_at_or_after_geq(4, Price::from_ticks(1)), None);
    }

    #[test]
    fn first_at_or_after_matches_linear_scan() {
        use simrng::{Rng, SeedableFrom, Xoshiro256pp};
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let pts: Vec<(u64, u64)> = (0..1000)
            .map(|i| (i * 300, rng.next_below(5000)))
            .collect();
        let h = history(&pts);
        for _ in 0..500 {
            let from = rng.next_below(1100) as usize;
            let bid = Price::from_ticks(rng.next_below(5200));
            let fast = h.first_at_or_after_geq(from, bid);
            let slow = pts
                .iter()
                .enumerate()
                .skip(from)
                .find(|(_, &(_, v))| v >= bid.ticks())
                .map(|(i, _)| i);
            assert_eq!(fast, slow, "from={from} bid={bid}");
        }
    }

    #[test]
    fn survival_rejected_when_bid_not_above_market() {
        let h = history(&[(0, 100), (300, 90)]);
        assert_eq!(h.survival(0, Price::from_ticks(100)), Survival::Rejected);
        assert_eq!(h.survival(0, Price::from_ticks(50)), Survival::Rejected);
        // Before history starts: rejected.
        let h2 = history(&[(500, 100)]);
        assert_eq!(h2.survival(100, Price::from_ticks(999)), Survival::Rejected);
    }

    #[test]
    fn survival_terminated_at_first_geq_update() {
        let h = history(&[(0, 100), (300, 110), (600, 120), (900, 90)]);
        // Bid 115: accepted at t=0 (100 < 115), terminated at t=600 (120 >= 115).
        assert_eq!(
            h.survival(0, Price::from_ticks(115)),
            Survival::Terminated { at: 600 }
        );
        // Started mid-history.
        assert_eq!(
            h.survival(400, Price::from_ticks(115)),
            Survival::Terminated { at: 600 }
        );
    }

    #[test]
    fn survival_exact_equality_terminates() {
        // Conservative semantics: price == bid counts as termination.
        let h = history(&[(0, 100), (300, 115)]);
        assert_eq!(
            h.survival(0, Price::from_ticks(115)),
            Survival::Terminated { at: 300 }
        );
    }

    #[test]
    fn survival_censored_when_bid_never_reached() {
        let h = history(&[(0, 100), (300, 110), (600, 105)]);
        assert_eq!(
            h.survival(0, Price::from_ticks(10_000)),
            Survival::Censored { until: 600 }
        );
    }

    #[test]
    fn survival_duration_helpers() {
        let s = Survival::Terminated { at: 7200 };
        assert_eq!(s.duration_from(3600), Some(3600));
        assert!(s.survives_for(3600, 3600));
        assert!(!s.survives_for(3600, 3601));
        assert_eq!(Survival::Rejected.duration_from(0), None);
        assert!(!Survival::Rejected.survives_for(0, 0));
        let c = Survival::Censored { until: 9000 };
        assert_eq!(c.duration_from(1000), Some(8000));
        assert!(c.survives_for(0, u64::MAX), "censoring counts as survival");
    }

    #[test]
    fn single_point_history() {
        let h = history(&[(100, 50)]);
        assert_eq!(
            h.survival(100, Price::from_ticks(60)),
            Survival::Censored { until: 100 }
        );
        assert_eq!(h.survival(100, Price::from_ticks(50)), Survival::Rejected);
    }
}
