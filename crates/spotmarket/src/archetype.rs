//! Price-dynamics archetypes.
//!
//! The paper documents qualitatively distinct market behaviours across AZ x
//! type combinations: calm near-constant floors (m1.large us-west-2c, §4.4),
//! two-orders-of-magnitude volatility (c4.4xlarge us-east-1e: $0.13–$9.5,
//! §4.4), markets whose spot price never drops below On-demand
//! (cg1.4xlarge: minimum observed $2.10010 vs $2.1 On-demand, §4.1.2),
//! diurnal load cycles, and spike-prone but otherwise quiet series. Each
//! combo is assigned one of six archetypes — deterministically from the
//! experiment seed — and the paper's specifically-cited combos are pinned
//! to the behaviour the paper reports.

use crate::types::{Combo, Region};

/// Qualitative market behaviour class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Archetype {
    /// Near-constant low floor with rare small wiggles.
    Calm,
    /// Daily load cycle on top of a low floor.
    Diurnal,
    /// Frequent moderate moves and regime changes.
    Choppy,
    /// Large swings spanning up to two orders of magnitude.
    Volatile,
    /// Quiet floor punctuated by short, tall spikes.
    Spiky,
    /// Spot price pinned at least one tick above the On-demand price.
    PinnedAbove,
}

impl Archetype {
    /// All archetypes, in weight-table order.
    pub const ALL: [Archetype; 6] = [
        Archetype::Calm,
        Archetype::Diurnal,
        Archetype::Choppy,
        Archetype::Volatile,
        Archetype::Spiky,
        Archetype::PinnedAbove,
    ];

    /// Population weights used for random assignment. Chosen so that the
    /// On-demand-as-bid policy fails for roughly the same share of combos
    /// as the paper's Table 1 (37% < 0.99) — Volatile, Spiky and
    /// PinnedAbove markets are the ones where the On-demand price is an
    /// insufficient bid.
    pub fn weight(self) -> f64 {
        match self {
            Archetype::Calm => 0.30,
            Archetype::Diurnal => 0.14,
            Archetype::Choppy => 0.25,
            Archetype::Volatile => 0.14,
            Archetype::Spiky => 0.12,
            Archetype::PinnedAbove => 0.05,
        }
    }

    /// Generator parameters for this archetype.
    pub fn params(self) -> ArchetypeParams {
        match self {
            Archetype::Calm => ArchetypeParams {
                base_frac: 0.15,
                sigma: 0.003,
                phi: 0.99,
                regime_rate: 1.0 / 40_000.0,
                regime_spread: 0.15,
                spike_rate: 1.0 / 400.0,
                spike_ln_mean: 0.7,
                spike_ln_sd: 0.12,
                spike_steps_mean: 15.0,
                diurnal_amp: 0.0,
                floor_frac: 0.08,
                cap_frac: 12.0,
                era_immune: false,
                hysteresis: 0.03,
            },
            Archetype::Diurnal => ArchetypeParams {
                base_frac: 0.20,
                sigma: 0.004,
                phi: 0.99,
                regime_rate: 1.0 / 30_000.0,
                regime_spread: 0.20,
                spike_rate: 1.0 / 450.0,
                spike_ln_mean: 0.6,
                spike_ln_sd: 0.12,
                spike_steps_mean: 12.0,
                diurnal_amp: 0.30,
                floor_frac: 0.08,
                cap_frac: 12.0,
                era_immune: false,
                hysteresis: 0.03,
            },
            Archetype::Choppy => ArchetypeParams {
                base_frac: 0.25,
                sigma: 0.035,
                phi: 0.98,
                regime_rate: 1.0 / 12_000.0,
                regime_spread: 0.40,
                spike_rate: 1.0 / 1500.0,
                spike_ln_mean: 1.2,
                spike_ln_sd: 0.30,
                spike_steps_mean: 8.0,
                diurnal_amp: 0.08,
                floor_frac: 0.08,
                cap_frac: 12.0,
                era_immune: false,
                hysteresis: 0.025,
            },
            Archetype::Volatile => ArchetypeParams {
                base_frac: 0.40,
                sigma: 0.070,
                phi: 0.985,
                regime_rate: 1.0 / 5000.0,
                regime_spread: 0.70,
                spike_rate: 1.0 / 800.0,
                spike_ln_mean: 1.6,
                spike_ln_sd: 0.45,
                spike_steps_mean: 8.0,
                diurnal_amp: 0.10,
                floor_frac: 0.10,
                cap_frac: 12.0,
                era_immune: true,
                hysteresis: 0.02,
            },
            Archetype::Spiky => ArchetypeParams {
                base_frac: 0.16,
                sigma: 0.003,
                phi: 0.99,
                regime_rate: 1.0 / 30_000.0,
                regime_spread: 0.25,
                spike_rate: 1.0 / 300.0,
                spike_ln_mean: 2.0,
                spike_ln_sd: 0.35,
                spike_steps_mean: 8.0,
                diurnal_amp: 0.0,
                floor_frac: 0.08,
                cap_frac: 12.0,
                era_immune: false,
                hysteresis: 0.05,
            },
            Archetype::PinnedAbove => ArchetypeParams {
                base_frac: 1.02,
                sigma: 0.003,
                phi: 0.99,
                regime_rate: 1.0 / 30_000.0,
                regime_spread: 0.10,
                spike_rate: 1.0 / 600.0,
                spike_ln_mean: 0.4,
                spike_ln_sd: 0.10,
                spike_steps_mean: 8.0,
                diurnal_amp: 0.0,
                // Floor one tick above On-demand is applied by the trace
                // generator for this archetype; base floor here is relative.
                floor_frac: 1.0,
                cap_frac: 12.0,
                era_immune: false,
                hysteresis: 0.03,
            },
        }
    }
}

/// Excursion-rate multiplier at the start of a generated trace. The 2016
/// spot market calmed substantially over the study period (the very change
/// that later obsoleted bidding): regime jumps and price excursions were
/// concentrated in the older part of any 90-day history. Rates interpolate
/// linearly from `ERA_START_MULT` to `ERA_END_MULT` across the trace.
pub const ERA_START_MULT: f64 = 2.0;

/// Excursion-rate multiplier at the end of a generated trace.
pub const ERA_END_MULT: f64 = 0.05;

/// Trace-generator parameters (all fractions are relative to the combo's
/// On-demand price; dynamics run in log-price space).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchetypeParams {
    /// Long-run mean spot/On-demand ratio.
    pub base_frac: f64,
    /// Innovation standard deviation of the log-price AR(1).
    pub sigma: f64,
    /// AR(1) coefficient per 5-minute step.
    pub phi: f64,
    /// Per-step probability of a regime-level jump.
    pub regime_rate: f64,
    /// Standard deviation of log regime-level jumps.
    pub regime_spread: f64,
    /// Per-step probability of starting a price spike.
    pub spike_rate: f64,
    /// Mean of the log spike multiplier.
    pub spike_ln_mean: f64,
    /// Standard deviation of the log spike multiplier.
    pub spike_ln_sd: f64,
    /// Mean spike duration in steps (geometric-ish).
    pub spike_steps_mean: f64,
    /// Amplitude of the 24-hour log-price sinusoid.
    pub diurnal_amp: f64,
    /// Price floor as a fraction of On-demand.
    pub floor_frac: f64,
    /// Price cap as a fraction of On-demand (AWS capped spot prices near
    /// 10x On-demand; the paper observed up to ~11.3x).
    pub cap_frac: f64,
    /// Whether this archetype ignores the secular era decay. Volatile
    /// markets are volatile precisely because they stayed hot through the
    /// study period (the paper's c4.4xlarge us-east-1e swung $0.13..$9.5
    /// during the test window itself).
    pub era_immune: bool,
    /// Publication hysteresis in log-price space: a new market price is
    /// announced only when the latent state moves this far from the last
    /// announcement. Real spot prices are *sticky* — plateaus lasting
    /// hours or days dominate the series (the paper notes "many price
    /// changes and/or repeated price announcements" on the 5-minute grid)
    /// — and that stickiness is what separates the empirical-CDF
    /// baseline's behaviour from a continuously wiggling series.
    pub hysteresis: f64,
}

/// Assigns an archetype to a combo.
///
/// Paper-cited combos are pinned (see module docs); all others draw from
/// the weight table using a hash of `(assignment_salt, combo)` so the map
/// is stable across runs with the same experiment seed.
pub fn assign(combo: Combo, catalog: &crate::catalog::Catalog, assignment_salt: u64) -> Archetype {
    if let Some(pinned) = pinned(combo, catalog) {
        return pinned;
    }
    let h = mix(assignment_salt ^ combo.key().wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    let mut acc = 0.0;
    for a in Archetype::ALL {
        acc += a.weight();
        if u < acc {
            return a;
        }
    }
    Archetype::PinnedAbove
}

/// The combos the paper describes specifically, pinned to their reported
/// behaviour so the figure/table harnesses reproduce the narrative.
fn pinned(combo: Combo, catalog: &crate::catalog::Catalog) -> Option<Archetype> {
    let name = catalog.spec(combo.ty).name;
    let region = combo.az.region();
    match (name, region) {
        // §4.1.2: spot price never below On-demand for cg1.4xlarge in
        // us-east-1 (observed in "us-east-1c").
        ("cg1.4xlarge", Region::UsEast1) => Some(Archetype::PinnedAbove),
        // §4.4: c4.4xlarge us-east-1e swung $0.13..$9.5.
        ("c4.4xlarge", Region::UsEast1) if combo.az.letter() == 'e' => Some(Archetype::Volatile),
        // §4.4: m1.large us-west-2c bid $0.10 vs OD $0.175 — calm.
        ("m1.large", Region::UsWest2) => Some(Archetype::Calm),
        // Figure 2: c4.large us-east-1, 100/100 launches survive at p=0.95.
        ("c4.large", Region::UsEast1) => Some(Archetype::Calm),
        // Figure 3: c3.2xlarge us-west-1, ~4 failures in 100 at p=0.95.
        ("c3.2xlarge", Region::UsWest1) => Some(Archetype::Choppy),
        // Figure 4: c3.4xlarge us-east-1 bid-duration graph with a knee.
        ("c3.4xlarge", Region::UsEast1) => Some(Archetype::Choppy),
        _ => None,
    }
}

/// SplitMix64 finalizer as a stand-alone mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::types::{Az, TypeId};

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = Archetype::ALL.iter().map(|a| a.weight()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn params_are_sane_for_all_archetypes() {
        for a in Archetype::ALL {
            let p = a.params();
            assert!(p.base_frac > 0.0);
            assert!(p.sigma >= 0.0);
            assert!((0.0..1.0).contains(&p.phi));
            assert!(p.floor_frac <= p.base_frac || a == Archetype::PinnedAbove);
            assert!(p.cap_frac > p.base_frac);
            assert!((0.0..1.0).contains(&p.regime_rate));
            assert!((0.0..1.0).contains(&p.spike_rate));
            assert!(p.hysteresis >= 0.0);
        }
    }

    #[test]
    fn assignment_is_deterministic_and_salt_sensitive() {
        let cat = Catalog::standard();
        let combo = Combo::new(Az::new(Region::UsWest2, 1), TypeId(7));
        assert_eq!(assign(combo, cat, 1), assign(combo, cat, 1));
        // Some combo must differ across salts.
        let differs = cat
            .combos()
            .iter()
            .any(|&c| assign(c, cat, 1) != assign(c, cat, 2));
        assert!(differs);
    }

    #[test]
    fn pinned_combos_match_paper_narrative() {
        let cat = Catalog::standard();
        let cg1 = cat.type_id("cg1.4xlarge").unwrap();
        for az in Region::UsEast1.azs() {
            if cat.is_available(Combo::new(az, cg1)) {
                assert_eq!(
                    assign(Combo::new(az, cg1), cat, 12345),
                    Archetype::PinnedAbove
                );
            }
        }
        let c4l = cat.type_id("c4.large").unwrap();
        let east_b = Az::parse("us-east-1b").unwrap();
        assert_eq!(assign(Combo::new(east_b, c4l), cat, 9), Archetype::Calm);
        let c44 = cat.type_id("c4.4xlarge").unwrap();
        let east_e = Az::parse("us-east-1e").unwrap();
        assert_eq!(assign(Combo::new(east_e, c44), cat, 9), Archetype::Volatile);
    }

    #[test]
    fn population_mix_roughly_matches_weights() {
        let cat = Catalog::standard();
        let combos = cat.combos();
        let mut counts = std::collections::HashMap::new();
        for &c in &combos {
            *counts.entry(assign(c, cat, 42)).or_insert(0usize) += 1;
        }
        let n = combos.len() as f64;
        for a in Archetype::ALL {
            let frac = *counts.get(&a).unwrap_or(&0) as f64 / n;
            // Within 8 points of the nominal weight (pinning and sampling
            // noise shift things a little at n = 452).
            assert!(
                (frac - a.weight()).abs() < 0.08,
                "{a:?}: frac {frac} vs weight {}",
                a.weight()
            );
        }
    }
}
