//! The spot market-clearing engine.
//!
//! Implements the mechanism the paper describes in §2.1: Amazon "sorts the
//! currently active maximum bids by value and allocates resources to
//! maximum bids (taking into account request size) in descending order of
//! bid value. The lowest maximum bid that corresponds to a 'taken' resource
//! determines the market price." Supply is hidden from participants; when
//! demand does not exhaust supply the price falls to a reserve floor.
//!
//! The engine is deterministic: ties in bid value are broken by submission
//! order (earlier requests win), so identical request sequences always
//! produce identical clearings.

use crate::price::Price;
use std::collections::BTreeMap;

/// Identifier of a live spot request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(u64);

impl RequestId {
    /// Raw id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One active request in the book.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BidEntry {
    bid: Price,
    qty: u64,
}

/// Result of one market clearing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clearing {
    /// The announced market price.
    pub price: Price,
    /// Units allocated per request (only requests receiving > 0 units).
    pub allocations: Vec<(RequestId, u64)>,
    /// Requests receiving zero units — terminated/rejected by the market.
    pub outbid: Vec<RequestId>,
}

impl Clearing {
    /// Total units allocated.
    pub fn allocated(&self) -> u64 {
        self.allocations.iter().map(|&(_, q)| q).sum()
    }
}

/// The clearing engine for one combo's market.
#[derive(Debug, Clone)]
pub struct Market {
    reserve: Price,
    supply: u64,
    next_id: u64,
    book: BTreeMap<RequestId, BidEntry>,
    last_price: Price,
}

impl Market {
    /// Creates a market with a reserve (floor) price and initial supply.
    ///
    /// # Panics
    /// Panics on a zero reserve — the Spot tier has a minimum increment.
    pub fn new(reserve: Price, supply: u64) -> Self {
        assert!(reserve > Price::ZERO, "reserve price must be positive");
        Self {
            reserve,
            supply,
            next_id: 0,
            book: BTreeMap::new(),
            last_price: reserve,
        }
    }

    /// Submits a request for `qty` units at maximum bid `bid`.
    ///
    /// # Panics
    /// Panics on zero quantity.
    pub fn submit(&mut self, bid: Price, qty: u64) -> RequestId {
        assert!(qty > 0, "requests must ask for at least one unit");
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.book.insert(id, BidEntry { bid, qty });
        id
    }

    /// Cancels (user-terminates) a request; returns whether it was live.
    pub fn cancel(&mut self, id: RequestId) -> bool {
        self.book.remove(&id).is_some()
    }

    /// Adjusts the hidden supply.
    pub fn set_supply(&mut self, supply: u64) {
        self.supply = supply;
    }

    /// Current hidden supply.
    pub fn supply(&self) -> u64 {
        self.supply
    }

    /// Total requested units across the book.
    pub fn demand(&self) -> u64 {
        self.book.values().map(|e| e.qty).sum()
    }

    /// Number of live requests.
    pub fn live_requests(&self) -> usize {
        self.book.len()
    }

    /// The most recently announced market price.
    pub fn price(&self) -> Price {
        self.last_price
    }

    /// Recomputes the market price, allocates supply, and evicts outbid
    /// requests from the book.
    pub fn clear(&mut self) -> Clearing {
        // Descending bid, ascending id within a bid level (FIFO priority).
        let mut order: Vec<(RequestId, BidEntry)> =
            self.book.iter().map(|(&id, &e)| (id, e)).collect();
        order.sort_by(|a, b| b.1.bid.cmp(&a.1.bid).then(a.0.cmp(&b.0)));

        let mut remaining = self.supply;
        let mut allocations = Vec::new();
        let mut outbid = Vec::new();
        let mut lowest_taken: Option<Price> = None;
        for (id, entry) in order {
            if remaining == 0 {
                outbid.push(id);
                continue;
            }
            let take = entry.qty.min(remaining);
            remaining -= take;
            allocations.push((id, take));
            lowest_taken = Some(entry.bid);
        }

        // Price: lowest accepted bid when supply is exhausted, else the
        // reserve floor (supply not scarce). Floors also apply to a bid
        // below the reserve.
        let price = if remaining == 0 {
            lowest_taken.unwrap_or(self.reserve).max(self.reserve)
        } else {
            self.reserve
        };

        // Requests whose bid is now strictly below the price are terminated
        // (they could only have been allocated if supply was plentiful, in
        // which case price == reserve <= their bid anyway).
        allocations.retain(|&(id, _)| {
            let keep = self.book[&id].bid >= price;
            if !keep {
                outbid.push(id);
            }
            keep
        });
        for &id in &outbid {
            self.book.remove(&id);
        }
        self.last_price = price;
        Clearing {
            price,
            allocations,
            outbid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ticks: u64) -> Price {
        Price::from_ticks(ticks)
    }

    #[test]
    #[should_panic(expected = "reserve price")]
    fn zero_reserve_rejected() {
        Market::new(Price::ZERO, 10);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_qty_rejected() {
        Market::new(p(1), 10).submit(p(5), 0);
    }

    #[test]
    fn empty_market_clears_at_reserve() {
        let mut m = Market::new(p(100), 50);
        let c = m.clear();
        assert_eq!(c.price, p(100));
        assert!(c.allocations.is_empty());
        assert!(c.outbid.is_empty());
        assert_eq!(m.price(), p(100));
    }

    #[test]
    fn plentiful_supply_prices_at_reserve() {
        let mut m = Market::new(p(100), 100);
        m.submit(p(500), 3);
        m.submit(p(900), 5);
        let c = m.clear();
        assert_eq!(c.price, p(100), "demand 8 < supply 100");
        assert_eq!(c.allocated(), 8);
        assert!(c.outbid.is_empty());
    }

    #[test]
    fn scarce_supply_prices_at_lowest_accepted_bid() {
        let mut m = Market::new(p(1), 10);
        let hi = m.submit(p(900), 6);
        let mid = m.submit(p(500), 6);
        let lo = m.submit(p(200), 6);
        let c = m.clear();
        // hi takes 6, mid takes 4, lo takes none.
        assert_eq!(c.price, p(500));
        assert_eq!(
            c.allocations,
            vec![(hi, 6), (mid, 4)],
            "descending-bid allocation with partial fill"
        );
        assert_eq!(c.outbid, vec![lo]);
        assert_eq!(m.live_requests(), 2, "outbid request evicted");
    }

    #[test]
    fn exact_supply_boundary() {
        let mut m = Market::new(p(1), 10);
        let a = m.submit(p(900), 4);
        let b = m.submit(p(300), 6);
        let c = m.clear();
        assert_eq!(c.price, p(300), "last unit taken at 300");
        assert_eq!(c.allocated(), 10);
        assert!(c.outbid.is_empty());
        let _ = (a, b);
    }

    #[test]
    fn ties_break_by_submission_order() {
        let mut m = Market::new(p(1), 5);
        let first = m.submit(p(400), 5);
        let second = m.submit(p(400), 5);
        let c = m.clear();
        assert_eq!(c.allocations, vec![(first, 5)]);
        assert_eq!(c.outbid, vec![second]);
        assert_eq!(c.price, p(400));
    }

    #[test]
    fn price_rises_when_supply_shrinks() {
        let mut m = Market::new(p(1), 100);
        for i in 0..20 {
            m.submit(p(100 + i * 50), 5);
        }
        let before = m.clear().price;
        m.set_supply(25);
        let after = m.clear().price;
        assert!(after > before, "{after:?} !> {before:?}");
    }

    #[test]
    fn rising_price_terminates_running_low_bids() {
        let mut m = Market::new(p(1), 10);
        let low = m.submit(p(200), 5);
        let c1 = m.clear();
        assert!(c1.allocations.contains(&(low, 5)));
        // A richer participant arrives and takes the whole supply.
        let rich = m.submit(p(1000), 10);
        let c2 = m.clear();
        assert_eq!(c2.price, p(1000));
        assert_eq!(c2.allocations, vec![(rich, 10)]);
        assert!(c2.outbid.contains(&low), "low bid terminated by price");
    }

    #[test]
    fn cancel_removes_from_book() {
        let mut m = Market::new(p(1), 10);
        let id = m.submit(p(500), 2);
        assert!(m.cancel(id));
        assert!(!m.cancel(id));
        assert_eq!(m.demand(), 0);
    }

    #[test]
    fn reserve_floors_the_price() {
        let mut m = Market::new(p(100), 2);
        m.submit(p(50), 5); // below reserve but demand exceeds supply
        let c = m.clear();
        assert_eq!(c.price, p(100));
        // Bid 50 < price 100: the request must be evicted.
        assert!(c.allocations.is_empty());
        assert_eq!(c.outbid.len(), 1);
    }

    // Randomized property tests (formerly proptest-based; rewritten on
    // simrng so the default build needs no registry crates). Enable with
    // `--features proptest`.
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use simrng::{Rng, SeedableFrom, Xoshiro256pp};

        /// Core clearing invariants over arbitrary books.
        #[test]
        fn clearing_invariants() {
            for case in 0..256u64 {
                let mut rng = Xoshiro256pp::seed_from_u64(0xC1EA5 ^ case);
                let supply = rng.next_below(50);
                let bids: Vec<(u64, u64)> = (0..rng.next_below(25))
                    .map(|_| (rng.next_below(999) + 1, rng.next_below(7) + 1))
                    .collect();
                let mut m = Market::new(p(10), supply);
                for &(b, q) in &bids {
                    m.submit(p(b), q);
                }
                let c = m.clear();
                // Never over-allocate.
                assert!(c.allocated() <= supply, "case {case}");
                // Price is at least the reserve.
                assert!(c.price >= p(10), "case {case}");
                // Scarcity => full allocation (bids at/above reserve take
                // every unit they can).
                let eligible_demand: u64 = bids
                    .iter()
                    .filter(|&&(b, _)| b >= 10)
                    .map(|&(_, q)| q)
                    .sum();
                if eligible_demand >= supply {
                    // All supply is taken unless every bid fell below the
                    // final price (possible only via the reserve floor).
                    if c.price == p(10) {
                        assert_eq!(
                            c.allocated(),
                            supply.min(eligible_demand),
                            "case {case}"
                        );
                    }
                } else {
                    assert_eq!(
                        c.price,
                        p(10),
                        "plentiful supply clears at reserve (case {case})"
                    );
                }
                // Only allocated requests survive in the book, and each
                // clearing partitions the book into allocated + outbid.
                assert_eq!(m.live_requests(), c.allocations.len(), "case {case}");
                assert_eq!(
                    c.allocations.len() + c.outbid.len(),
                    bids.len(),
                    "every request is either allocated or outbid (case {case})"
                );
            }
        }
    }
}
