//! Deterministic fault injection for the price feed and the launch API.
//!
//! The production DrAFTS pipeline (paper §3.3) polled the EC2 price-history
//! API every 15 minutes; the provisioner called the launch API per job. Both
//! are real web services with real failure modes — outages, publication lag,
//! lost or repeated updates, throttling, capacity errors — which the rest of
//! this workspace must degrade against, never silently mis-guarantee under.
//!
//! This module provides the substrate:
//!
//! * [`FeedSource`] — what a polling client sees of a combo's price feed.
//!   The clean path is [`CleanFeed`] (the full history, no perturbation);
//!   [`FaultyFeed`] applies a seeded [`FaultPlan`] so that every downstream
//!   consumer can be driven through outage windows, lagged/dropped/
//!   duplicated/out-of-order updates, and corrupted ticks.
//! * [`LaunchFaults`] — seeded insufficient-capacity windows and API
//!   throttling for the launch simulator.
//!
//! Everything is derived from a single seed through [`StreamFactory`], so a
//! plan replays bit-identically: same seed, same combo, same faults. The
//! zero-fault plan ([`FaultPlan::none`]) delivers every update at its
//! publication time with its true value — byte-identical to the clean path.

use crate::history::PriceHistory;
use crate::types::Combo;
use crate::{DAY, HOUR, MINUTE};
use obs::{Counter, Registry};
use simrng::{Rng, StreamFactory};
use std::sync::Arc;
use tsforecast::TimeSeries;

/// The canonical `az/type-id` label identifying a combo in metric labels
/// and structured-event fields (e.g. `us-east-1b/3`). One definition so
/// fault counters, health events, and test assertions never drift.
pub fn combo_label(combo: Combo) -> String {
    format!("{}/{}", combo.az, combo.ty.0)
}

/// A seeded description of how a combo's price feed misbehaves.
///
/// All rates are per-update probabilities in `[0, 1)` except the outage
/// fields (a Poisson-style process over wall time). The plan is pure data:
/// two [`FaultyFeed`]s built from equal plans over equal histories behave
/// identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Root seed for every stream the plan derives.
    pub seed: u64,
    /// Expected feed outages per day (exponential gaps); `0` disables.
    pub outages_per_day: f64,
    /// Mean outage duration in seconds (exponential).
    pub outage_mean_secs: f64,
    /// Mean publication lag added to every update, in seconds
    /// (exponential); `0` publishes instantly.
    pub lag_mean_secs: f64,
    /// Probability an update is dropped and never delivered.
    pub drop_prob: f64,
    /// Probability an update is delivered a second time later.
    pub duplicate_prob: f64,
    /// Probability an update receives an extra reordering delay.
    pub reorder_prob: f64,
    /// Maximum extra reordering delay in seconds (uniform).
    pub reorder_max_secs: u64,
    /// Probability an update's price ticks are corrupted in transit.
    pub corrupt_prob: f64,
    /// Maximum relative magnitude of a corruption (e.g. `0.2` = ±20%,
    /// with a one-tick minimum perturbation).
    pub corrupt_rel: f64,
    /// Per-poll-attempt probability of an API throttle rejection.
    pub throttle_prob: f64,
}

impl FaultPlan {
    /// The zero-fault plan: every update delivered at publication time,
    /// unmodified, with no outages or throttling.
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            outages_per_day: 0.0,
            outage_mean_secs: 0.0,
            lag_mean_secs: 0.0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_max_secs: 0,
            corrupt_prob: 0.0,
            corrupt_rel: 0.0,
            throttle_prob: 0.0,
        }
    }

    /// A reference plan scaled by `intensity` in `[0, 1]`: `0` is
    /// [`FaultPlan::none`], `1` is a hostile feed (a couple of multi-hour
    /// outages a day, minutes of lag, percent-level loss/duplication/
    /// corruption, frequent throttles). Intensities between interpolate
    /// linearly; probabilities are clamped below 1.
    pub fn with_intensity(seed: u64, intensity: f64) -> Self {
        assert!(intensity >= 0.0, "intensity must be non-negative");
        let x = intensity;
        let prob = |p: f64| (p * x).clamp(0.0, 0.95);
        Self {
            seed,
            outages_per_day: 2.0 * x,
            outage_mean_secs: 2.0 * HOUR as f64 * x,
            lag_mean_secs: 2.0 * MINUTE as f64 * x,
            drop_prob: prob(0.05),
            duplicate_prob: prob(0.03),
            reorder_prob: prob(0.05),
            reorder_max_secs: (30.0 * MINUTE as f64 * x) as u64,
            corrupt_prob: prob(0.02),
            corrupt_rel: 0.2 * x,
            throttle_prob: prob(0.25),
        }
    }

    /// Whether the plan perturbs nothing (the clean path).
    pub fn is_zero(&self) -> bool {
        self.outages_per_day == 0.0
            && self.lag_mean_secs == 0.0
            && self.drop_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.reorder_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.throttle_prob == 0.0
    }

    /// Validates the plan's rates.
    ///
    /// # Panics
    /// Panics on negative fields or probabilities outside `[0, 1)`.
    pub fn validate(&self) {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("reorder_prob", self.reorder_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("throttle_prob", self.throttle_prob),
        ] {
            assert!((0.0..1.0).contains(&p), "{name} must be in [0, 1)");
        }
        assert!(self.outages_per_day >= 0.0, "negative outage rate");
        assert!(self.outage_mean_secs >= 0.0, "negative outage duration");
        assert!(self.lag_mean_secs >= 0.0, "negative lag");
        assert!(self.corrupt_rel >= 0.0, "negative corruption magnitude");
    }
}

/// Why a feed poll returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedError {
    /// The feed endpoint is down; expected back at `until`.
    Outage {
        /// End of the outage window.
        until: u64,
    },
    /// The request was throttled; retrying later may succeed.
    Throttled,
}

/// What a polling client sees of one combo's price feed.
///
/// `poll(now, attempt)` returns the history the feed has published by
/// `now` — possibly perturbed, possibly an error. `attempt` is the retry
/// ordinal within one logical fetch, so throttling decisions can vary
/// across retries while staying deterministic. Implementations may return
/// more than the `now`-prefix (the clean feed returns the whole backing
/// history); consumers must truncate to their own visibility horizon.
pub trait FeedSource: Send + Sync {
    /// The combo this feed publishes.
    fn combo(&self) -> Combo;

    /// Polls the feed at `now`.
    fn poll(&self, now: u64, attempt: u32) -> Result<Arc<PriceHistory>, FeedError>;

    /// Attaches this feed's own counters (if any) to `registry`, called
    /// once at boot by whoever owns the exposition. The default — and the
    /// clean feed — exposes nothing.
    fn register_metrics(&self, _registry: &Registry) {}
}

/// The perfect feed: every update visible the instant it happens.
///
/// Polls cheaply return the full backing history; the service truncates to
/// its bucket time, which makes this exactly the pre-fault-injection
/// behaviour.
#[derive(Debug, Clone)]
pub struct CleanFeed {
    history: Arc<PriceHistory>,
}

impl CleanFeed {
    /// Wraps a history as an always-available feed.
    pub fn new(history: Arc<PriceHistory>) -> Self {
        Self { history }
    }
}

impl FeedSource for CleanFeed {
    fn combo(&self) -> Combo {
        self.history.combo()
    }

    fn poll(&self, _now: u64, _attempt: u32) -> Result<Arc<PriceHistory>, FeedError> {
        Ok(self.history.clone())
    }
}

/// Injected-fault and rejected-poll counters for one [`FaultyFeed`].
///
/// The schedule-derived kinds (drops, duplicates, corruptions, reorders)
/// are fixed totals set when the feed samples its delivery schedule at
/// construction; the poll-time kinds (outage, throttle rejections) count
/// live as clients poll. [`FeedSource::register_metrics`] exposes all of
/// them per combo under `drafts_feed_faults_total{combo=...,kind=...}`.
#[derive(Debug, Clone, Default)]
pub struct FaultCounters {
    /// Updates dropped from the schedule (never delivered).
    pub drops: Counter,
    /// Extra deliveries of an already-delivered update.
    pub duplicates: Counter,
    /// Updates whose price ticks were corrupted in transit.
    pub corruptions: Counter,
    /// Updates given an extra reordering delay.
    pub reorders: Counter,
    /// Polls rejected inside an outage window.
    pub outage_polls: Counter,
    /// Polls rejected by API throttling.
    pub throttled_polls: Counter,
}

/// One delivery of one (possibly corrupted) update.
#[derive(Debug, Clone, Copy)]
struct DeliveryEvent {
    /// When the client can first observe the update.
    delivered_at: u64,
    /// The update's publication timestamp.
    time: u64,
    /// The (possibly corrupted) price ticks.
    ticks: u64,
}

/// A feed that perturbs a true history per a [`FaultPlan`].
///
/// All randomness is drawn up front at construction (one stream per
/// `(plan.seed, combo)`), producing a fixed schedule of delivery events and
/// outage windows; `poll` is then a pure function of `now`. Timestamps are
/// never altered — lag and reordering delay *delivery*, so late updates
/// appear with their original (older) publication times, exactly like a
/// delayed price-history API.
pub struct FaultyFeed {
    truth: Arc<PriceHistory>,
    plan: FaultPlan,
    /// All deliveries, sorted by `(delivered_at, time)`.
    events: Vec<DeliveryEvent>,
    /// Non-overlapping `[start, end)` outage windows, ascending.
    outages: Vec<(u64, u64)>,
    /// The perturbed series a patient client eventually holds.
    delivered: Arc<PriceHistory>,
    /// For the k-th update of `delivered`: the latest first-arrival time
    /// among updates `0..=k` (prefix max), i.e. when the contiguous prefix
    /// of length `k + 1` becomes fully visible.
    prefix_delivery: Vec<u64>,
    /// Injected-fault totals and live poll-rejection counters.
    faults: FaultCounters,
}

impl FaultyFeed {
    /// Builds the feed by sampling the plan's full delivery schedule.
    ///
    /// # Panics
    /// Panics on an invalid plan.
    pub fn new(truth: Arc<PriceHistory>, plan: FaultPlan) -> Self {
        plan.validate();
        let combo = truth.combo();
        let factory = StreamFactory::new(plan.seed);
        let faults = FaultCounters::default();
        let outages = Self::sample_outages(&truth, &plan, &factory, combo);
        let events =
            Self::sample_deliveries(&truth, &plan, &factory, combo, &outages, &faults);

        // The eventually-delivered series: every delivered timestamp once,
        // in time order (duplicates carry identical ticks, so keep-first).
        let mut by_time: Vec<(u64, u64, u64)> = Vec::with_capacity(events.len());
        for e in &events {
            by_time.push((e.time, e.ticks, e.delivered_at));
        }
        by_time.sort_unstable_by_key(|&(t, _, d)| (t, d));
        by_time.dedup_by_key(|&mut (t, _, _)| t);
        let series: TimeSeries = by_time.iter().map(|&(t, v, _)| (t, v)).collect();
        let delivered = Arc::new(PriceHistory::new(combo, series));
        let mut prefix_delivery = Vec::with_capacity(by_time.len());
        let mut latest = 0u64;
        for &(_, _, d) in &by_time {
            latest = latest.max(d);
            prefix_delivery.push(latest);
        }

        Self {
            truth,
            plan,
            events,
            outages,
            delivered,
            prefix_delivery,
            faults,
        }
    }

    fn sample_outages(
        truth: &PriceHistory,
        plan: &FaultPlan,
        factory: &StreamFactory,
        combo: Combo,
    ) -> Vec<(u64, u64)> {
        if plan.outages_per_day <= 0.0 || plan.outage_mean_secs <= 0.0 || truth.is_empty() {
            return Vec::new();
        }
        let mut rng = factory.stream("feed-outages", combo.key());
        let start = truth.time(0);
        // Cover the whole history plus enough slack that deferred
        // deliveries near the end still resolve against real windows.
        let horizon = truth.time(truth.len() - 1) + DAY;
        let mean_gap = DAY as f64 / plan.outages_per_day;
        let mut windows = Vec::new();
        let mut t = start as f64;
        loop {
            t += exp_sample(&mut rng, mean_gap);
            if t >= horizon as f64 {
                break;
            }
            let dur = exp_sample(&mut rng, plan.outage_mean_secs).max(1.0);
            let s = t as u64;
            let e = (t + dur) as u64;
            windows.push((s, e.max(s + 1)));
            t += dur;
        }
        windows
    }

    fn sample_deliveries(
        truth: &PriceHistory,
        plan: &FaultPlan,
        factory: &StreamFactory,
        combo: Combo,
        outages: &[(u64, u64)],
        faults: &FaultCounters,
    ) -> Vec<DeliveryEvent> {
        let mut rng = factory.stream("feed-faults", combo.key());
        let defer = |t: u64| defer_past_outages(t, outages);
        let times = truth.series().times();
        let values = truth.series().values();
        let mut events = Vec::with_capacity(times.len());
        for (&time, &ticks) in times.iter().zip(values) {
            // Draw every variate unconditionally so the stream position is
            // independent of which faults fire: tweaking one probability
            // never re-randomises the others.
            let u_drop = rng.next_f64();
            let lag = exp_sample(&mut rng, plan.lag_mean_secs);
            let u_reorder = rng.next_f64();
            let u_reorder_extra = rng.next_f64();
            let u_dup = rng.next_f64();
            let u_dup_delay = rng.next_f64();
            let u_corrupt = rng.next_f64();
            let u_corrupt_mag = rng.next_f64();

            if u_drop < plan.drop_prob {
                faults.drops.inc();
                continue;
            }
            let delivered_ticks = if u_corrupt < plan.corrupt_prob {
                faults.corruptions.inc();
                corrupt_ticks(ticks, u_corrupt_mag, plan.corrupt_rel)
            } else {
                ticks
            };
            let reorder = if u_reorder < plan.reorder_prob {
                faults.reorders.inc();
                (u_reorder_extra * plan.reorder_max_secs as f64) as u64
            } else {
                0
            };
            let delivered_at = defer(time + lag as u64 + reorder);
            events.push(DeliveryEvent {
                delivered_at,
                time,
                ticks: delivered_ticks,
            });
            if u_dup < plan.duplicate_prob {
                faults.duplicates.inc();
                let dup_gap = 1 + (u_dup_delay * plan.reorder_max_secs.max(MINUTE) as f64) as u64;
                events.push(DeliveryEvent {
                    delivered_at: defer(delivered_at + dup_gap),
                    time,
                    ticks: delivered_ticks,
                });
            }
        }
        events.sort_by_key(|e| (e.delivered_at, e.time));
        events
    }

    /// The unperturbed history (ground truth for survival accounting).
    pub fn truth(&self) -> &Arc<PriceHistory> {
        &self.truth
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The full perturbed series a patient client eventually holds.
    pub fn delivered(&self) -> &Arc<PriceHistory> {
        &self.delivered
    }

    /// The feed's fault counters: injected totals fixed at construction
    /// plus live poll-rejection counts.
    pub fn fault_counters(&self) -> &FaultCounters {
        &self.faults
    }

    /// The outage windows, ascending and non-overlapping.
    pub fn outages(&self) -> &[(u64, u64)] {
        &self.outages
    }

    /// The outage window covering `now`, if any (returns its end).
    pub fn outage_at(&self, now: u64) -> Option<u64> {
        let i = self.outages.partition_point(|&(s, _)| s <= now);
        (i > 0 && now < self.outages[i - 1].1).then(|| self.outages[i - 1].1)
    }

    /// Length of the contiguous prefix of [`Self::delivered`] fully
    /// visible at `now` — what a strictly in-order streaming consumer has
    /// applied. Under the zero-fault plan this equals
    /// `index_at(now) + 1` on the true history.
    pub fn prefix_visible_at(&self, now: u64) -> usize {
        self.prefix_delivery.partition_point(|&d| d <= now)
    }

    /// Age at `now` of the newest update in the visible contiguous prefix
    /// (`None` before anything is visible).
    pub fn staleness_at(&self, now: u64) -> Option<u64> {
        let k = self.prefix_visible_at(now);
        (k > 0).then(|| now.saturating_sub(self.delivered.time(k - 1)))
    }
}

impl FeedSource for FaultyFeed {
    fn combo(&self) -> Combo {
        self.truth.combo()
    }

    /// A poll at `now` fails inside an outage window, may be throttled
    /// (per-attempt, deterministic in `(seed, combo, now, attempt)`), and
    /// otherwise returns a snapshot of every update delivered by `now`,
    /// re-sorted into time order — what a client that rebuilds its view
    /// from the full API response holds.
    fn poll(&self, now: u64, attempt: u32) -> Result<Arc<PriceHistory>, FeedError> {
        if let Some(until) = self.outage_at(now) {
            self.faults.outage_polls.inc();
            return Err(FeedError::Outage { until });
        }
        if self.plan.throttle_prob > 0.0 {
            let index = self
                .truth
                .combo()
                .key()
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(now)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(attempt as u64);
            let u = hash_prob(self.plan.seed, "feed-throttle", index);
            if u < self.plan.throttle_prob {
                self.faults.throttled_polls.inc();
                return Err(FeedError::Throttled);
            }
        }
        let visible = self.events.partition_point(|e| e.delivered_at <= now);
        let mut pairs: Vec<(u64, u64)> = self.events[..visible]
            .iter()
            .map(|e| (e.time, e.ticks))
            .collect();
        pairs.sort_unstable_by_key(|&(t, _)| t);
        pairs.dedup_by_key(|&mut (t, _)| t);
        let series: TimeSeries = pairs.into_iter().collect();
        Ok(Arc::new(PriceHistory::new(self.truth.combo(), series)))
    }

    /// Exposes the per-kind fault counters, labelled by combo so several
    /// faulty feeds coexist in one registry.
    fn register_metrics(&self, registry: &Registry) {
        let label = combo_label(self.truth.combo());
        for (kind, counter) in [
            ("drop", &self.faults.drops),
            ("duplicate", &self.faults.duplicates),
            ("corrupt", &self.faults.corruptions),
            ("reorder", &self.faults.reorders),
            ("outage_poll", &self.faults.outage_polls),
            ("throttled_poll", &self.faults.throttled_polls),
        ] {
            registry.attach_counter(
                &format!("drafts_feed_faults_total{{combo=\"{label}\",kind=\"{kind}\"}}"),
                counter,
            );
        }
    }
}

/// Seeded launch-API faults for the spot simulator: insufficient-capacity
/// windows (a pool runs dry for a while) and per-request throttling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchFaults {
    /// Root seed for the fault decisions.
    pub seed: u64,
    /// Probability a given `(combo, window)` has no capacity.
    pub capacity_prob: f64,
    /// Width of a capacity window in seconds (shortages persist for the
    /// whole window).
    pub capacity_window: u64,
    /// Per-request probability of an API throttle rejection.
    pub throttle_prob: f64,
}

impl LaunchFaults {
    /// No launch faults (the clean path).
    pub fn none() -> Self {
        Self {
            seed: 0,
            capacity_prob: 0.0,
            capacity_window: HOUR,
            throttle_prob: 0.0,
        }
    }

    /// A reference fault load scaled by `intensity` in `[0, 1]`.
    pub fn with_intensity(seed: u64, intensity: f64) -> Self {
        assert!(intensity >= 0.0, "intensity must be non-negative");
        Self {
            seed,
            capacity_prob: (0.10 * intensity).clamp(0.0, 0.95),
            capacity_window: HOUR,
            throttle_prob: (0.20 * intensity).clamp(0.0, 0.95),
        }
    }

    /// Whether the configuration injects nothing.
    pub fn is_zero(&self) -> bool {
        self.capacity_prob == 0.0 && self.throttle_prob == 0.0
    }

    /// Validates the rates.
    ///
    /// # Panics
    /// Panics on probabilities outside `[0, 1)` or a zero window.
    pub fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.capacity_prob),
            "capacity_prob must be in [0, 1)"
        );
        assert!(
            (0.0..1.0).contains(&self.throttle_prob),
            "throttle_prob must be in [0, 1)"
        );
        assert!(self.capacity_window > 0, "zero capacity window");
    }

    /// Whether `combo` is out of capacity at `t`.
    pub fn capacity_exhausted(&self, combo: Combo, t: u64) -> bool {
        if self.capacity_prob == 0.0 {
            return false;
        }
        let window = t / self.capacity_window;
        let index = combo
            .key()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(window);
        hash_prob(self.seed, "launch-capacity", index) < self.capacity_prob
    }

    /// Whether the `nth` launch request (a per-simulator ordinal) for
    /// `combo` at `t` is throttled.
    pub fn throttled(&self, combo: Combo, t: u64, nth: u64) -> bool {
        if self.throttle_prob == 0.0 {
            return false;
        }
        let index = combo
            .key()
            .wrapping_mul(0x100_0000_01B3)
            .wrapping_add(t)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(nth);
        hash_prob(self.seed, "launch-throttle", index) < self.throttle_prob
    }
}

/// How a serving shard misbehaves during a fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShardFaultKind {
    /// Responds but slowly; answers are still correct (front should mark
    /// the shard Degraded, not route around it).
    Slow,
    /// Accepts connections but never answers (front must time out and
    /// fail over).
    Hang,
    /// The process is gone: connections are refused for the rest of the
    /// run (`until` is ignored — kills never heal).
    Kill,
}

impl ShardFaultKind {
    /// Stable lowercase label for CSV/config rows.
    pub fn label(self) -> &'static str {
        match self {
            ShardFaultKind::Slow => "slow",
            ShardFaultKind::Hang => "hang",
            ShardFaultKind::Kill => "kill",
        }
    }
}

/// One scheduled shard fault: `shard` misbehaves as `kind` over the
/// virtual-time window `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFault {
    /// Index of the afflicted shard.
    pub shard: usize,
    /// Failure mode.
    pub kind: ShardFaultKind,
    /// Virtual second the fault begins (inclusive).
    pub from: u64,
    /// Virtual second the fault ends (exclusive; `u64::MAX` for kills).
    pub until: u64,
}

/// A fleet-scope fault plan: which shards fail, how, and when — a pure
/// function of the seed, so two runs with the same plan inject the same
/// faults at the same virtual times, byte for byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFaults {
    shards: usize,
    faults: Vec<ShardFault>,
}

impl ShardFaults {
    /// No shard faults (the clean path) for a fleet of `shards`.
    pub fn none(shards: usize) -> Self {
        assert!(shards > 0, "empty fleet");
        Self {
            shards,
            faults: Vec::new(),
        }
    }

    /// An explicit plan.
    ///
    /// # Panics
    /// Panics on an out-of-range shard index or an empty window.
    pub fn with(shards: usize, faults: Vec<ShardFault>) -> Self {
        assert!(shards > 0, "empty fleet");
        for f in &faults {
            assert!(f.shard < shards, "fault on shard {} of {shards}", f.shard);
            assert!(f.from < f.until, "empty fault window");
        }
        Self { shards, faults }
    }

    /// Samples a plan: `kills + hangs + slows` distinct victim shards
    /// (chosen by a seeded shuffle), each faulting once with an onset in
    /// the middle half of `window` so the run observes both the healthy
    /// and the degraded regime. Kills last forever; hangs and slows heal
    /// after an eighth of the window.
    ///
    /// # Panics
    /// Panics if more victims are requested than there are shards, or on
    /// an empty window.
    pub fn sample(
        seed: u64,
        shards: usize,
        window: (u64, u64),
        kills: usize,
        hangs: usize,
        slows: usize,
    ) -> Self {
        assert!(shards > 0, "empty fleet");
        let victims_wanted = kills + hangs + slows;
        assert!(
            victims_wanted <= shards,
            "{victims_wanted} victims but only {shards} shards"
        );
        let (start, end) = window;
        assert!(start < end, "empty fault window");
        let span = end - start;
        // Seeded Fisher-Yates over the shard indices picks distinct victims.
        let factory = StreamFactory::new(seed);
        let mut order: Vec<usize> = (0..shards).collect();
        let mut rng = factory.stream_named("shard-victims");
        for i in (1..shards).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let kinds = core::iter::empty()
            .chain(core::iter::repeat_n(ShardFaultKind::Kill, kills))
            .chain(core::iter::repeat_n(ShardFaultKind::Hang, hangs))
            .chain(core::iter::repeat_n(ShardFaultKind::Slow, slows));
        let faults = order
            .into_iter()
            .zip(kinds)
            .enumerate()
            .map(|(i, (shard, kind))| {
                // Onset lands in the middle half of the window.
                let jitter = hash_prob(seed, "shard-onset", i as u64);
                let from = start + span / 4 + ((span / 2) as f64 * jitter) as u64;
                let until = match kind {
                    ShardFaultKind::Kill => u64::MAX,
                    _ => (from + (span / 8).max(1)).min(end),
                };
                ShardFault {
                    shard,
                    kind,
                    from,
                    until,
                }
            })
            .collect();
        Self { shards, faults }
    }

    /// Fleet size the plan was built for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Whether the plan injects nothing.
    pub fn is_zero(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[ShardFault] {
        &self.faults
    }

    /// The most severe fault afflicting `shard` at virtual time `now`
    /// (`Kill` over `Hang` over `Slow`), if any.
    pub fn active(&self, shard: usize, now: u64) -> Option<ShardFaultKind> {
        self.faults
            .iter()
            .filter(|f| f.shard == shard && f.from <= now && now < f.until)
            .map(|f| f.kind)
            .max()
    }

    /// Stable one-token summary for CSV config rows, e.g.
    /// `kill@2:1728150` — kind, victim shard, onset — joined by `+`;
    /// `none` for the empty plan.
    pub fn label(&self) -> String {
        if self.faults.is_empty() {
            return "none".to_string();
        }
        let parts: Vec<String> = self
            .faults
            .iter()
            .map(|f| format!("{}@{}:{}", f.kind.label(), f.shard, f.from))
            .collect();
        parts.join("+")
    }
}

/// A uniform `[0, 1)` draw keyed by `(seed, domain, index)` — stateless
/// hashing (no stream consumed), so fault decisions at unrelated call
/// sites never couple.
pub fn hash_prob(seed: u64, domain: &str, index: u64) -> f64 {
    let bits = StreamFactory::new(seed).derive_seed(domain, index);
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Inverse-CDF exponential sample with the given mean (`0` mean → `0`).
/// Always consumes exactly one draw, keeping stream alignment independent
/// of the plan's parameters.
fn exp_sample<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u = rng.next_f64_open();
    if mean <= 0.0 {
        return 0.0;
    }
    -u.ln() * mean
}

/// Perturbs `ticks` by up to ±`rel`, never to zero, always by ≥ 1 tick.
fn corrupt_ticks(ticks: u64, u: f64, rel: f64) -> u64 {
    let factor = 1.0 + (2.0 * u - 1.0) * rel;
    let perturbed = ((ticks as f64 * factor).round() as u64).max(1);
    if perturbed == ticks {
        ticks + 1
    } else {
        perturbed
    }
}

fn defer_past_outages(t: u64, outages: &[(u64, u64)]) -> u64 {
    let i = outages.partition_point(|&(s, _)| s <= t);
    if i > 0 && t < outages[i - 1].1 {
        outages[i - 1].1
    } else {
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::tracegen::{self, TraceConfig};
    use crate::types::Az;

    fn truth() -> Arc<PriceHistory> {
        let cat = Catalog::standard();
        let combo = Combo::new(
            Az::parse("us-east-1b").unwrap(),
            cat.type_id("c4.large").unwrap(),
        );
        Arc::new(tracegen::generate(combo, cat, &TraceConfig::days(10, 7)))
    }

    fn hostile() -> FaultPlan {
        FaultPlan::with_intensity(99, 1.0)
    }

    #[test]
    fn zero_fault_plan_is_the_clean_path() {
        let truth = truth();
        let feed = FaultyFeed::new(truth.clone(), FaultPlan::none(5));
        assert!(feed.plan().is_zero());
        assert!(feed.outages().is_empty());
        // Eventually-delivered series is the truth, bit for bit.
        assert_eq!(feed.delivered().series().times(), truth.series().times());
        assert_eq!(feed.delivered().series().values(), truth.series().values());
        // The visible prefix tracks wall time exactly.
        for t in [0, 3_000, 86_400, 5 * 86_400] {
            let expect = truth.series().index_at(t).map_or(0, |i| i + 1);
            assert_eq!(feed.prefix_visible_at(t), expect, "t={t}");
        }
        // A poll mid-history returns exactly the visible updates.
        let now = 4 * DAY + 17;
        let snap = feed.poll(now, 0).unwrap();
        let upto = truth.series().index_at(now).unwrap();
        assert_eq!(snap.series().times(), &truth.series().times()[..=upto]);
        assert_eq!(snap.series().values(), &truth.series().values()[..=upto]);
    }

    #[test]
    fn with_intensity_zero_equals_none() {
        assert_eq!(FaultPlan::with_intensity(3, 0.0), FaultPlan::none(3));
        assert!(LaunchFaults::with_intensity(3, 0.0).is_zero());
    }

    #[test]
    fn faulty_feed_is_deterministic() {
        let truth = truth();
        let a = FaultyFeed::new(truth.clone(), hostile());
        let b = FaultyFeed::new(truth.clone(), hostile());
        assert_eq!(a.outages(), b.outages());
        assert_eq!(
            a.delivered().series().times(),
            b.delivered().series().times()
        );
        assert_eq!(
            a.delivered().series().values(),
            b.delivered().series().values()
        );
        for t in (0..10 * DAY).step_by(7 * 3600) {
            assert_eq!(a.prefix_visible_at(t), b.prefix_visible_at(t));
            match (a.poll(t, 0), b.poll(t, 0)) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.series().times(), y.series().times());
                    assert_eq!(x.series().values(), y.series().values());
                }
                (ex, ey) => assert_eq!(ex.err(), ey.err()),
            }
        }
        // A different seed produces a different schedule.
        let c = FaultyFeed::new(truth, FaultPlan::with_intensity(100, 1.0));
        assert_ne!(a.outages(), c.outages());
    }

    #[test]
    fn drops_shrink_and_lag_delays_delivery() {
        let truth = truth();
        let feed = FaultyFeed::new(truth.clone(), hostile());
        let delivered = feed.delivered();
        assert!(delivered.len() < truth.len(), "drops must lose updates");
        assert!(delivered.len() > truth.len() / 2, "but not most of them");
        // Delivered timestamps are a subset of true ones.
        let true_times: std::collections::HashSet<u64> =
            truth.series().times().iter().copied().collect();
        assert!(delivered
            .series()
            .times()
            .iter()
            .all(|t| true_times.contains(t)));
        // Lag: at some instant the visible prefix trails the published one.
        let t = 5 * DAY;
        let published = delivered.series().index_at(t).map_or(0, |i| i + 1);
        assert!(feed.prefix_visible_at(t) < published, "lag must show");
        // The prefix is monotone in time.
        let mut last = 0;
        for t in (0..11 * DAY).step_by(3600) {
            let k = feed.prefix_visible_at(t);
            assert!(k >= last);
            last = k;
        }
    }

    #[test]
    fn corruption_changes_values_but_not_times() {
        let truth = truth();
        let plan = FaultPlan {
            corrupt_prob: 0.5,
            corrupt_rel: 0.3,
            ..FaultPlan::none(11)
        };
        let feed = FaultyFeed::new(truth.clone(), plan);
        let delivered = feed.delivered();
        assert_eq!(delivered.series().times(), truth.series().times());
        let changed = delivered
            .series()
            .values()
            .iter()
            .zip(truth.series().values())
            .filter(|(a, b)| a != b)
            .count();
        let frac = changed as f64 / truth.len() as f64;
        assert!((0.4..0.6).contains(&frac), "corruption rate {frac}");
        assert!(delivered.series().values().iter().all(|&v| v > 0));
    }

    #[test]
    fn outages_block_polls_and_defer_deliveries() {
        let truth = truth();
        let plan = FaultPlan {
            outages_per_day: 4.0,
            outage_mean_secs: 3.0 * HOUR as f64,
            ..FaultPlan::none(13)
        };
        let feed = FaultyFeed::new(truth.clone(), plan);
        assert!(!feed.outages().is_empty());
        let &(s, e) = &feed.outages()[0];
        assert!(s < e);
        let mid = s + (e - s) / 2;
        assert_eq!(feed.poll(mid, 0).err(), Some(FeedError::Outage { until: e }));
        assert_eq!(feed.outage_at(mid), Some(e));
        assert_eq!(feed.outage_at(e), None, "window end is exclusive");
        // Nothing published inside the window becomes visible before it
        // ends: the visible prefix is frozen across the window.
        assert_eq!(feed.prefix_visible_at(mid), feed.prefix_visible_at(s));
        // Windows never overlap.
        for w in feed.outages().windows(2) {
            assert!(w[0].1 <= w[1].0);
        }
    }

    #[test]
    fn duplicates_do_not_distort_the_series() {
        let truth = truth();
        let plan = FaultPlan {
            duplicate_prob: 0.5,
            ..FaultPlan::none(17)
        };
        let feed = FaultyFeed::new(truth.clone(), plan);
        // Duplicates re-deliver existing updates; the assembled series is
        // still exactly the truth.
        assert_eq!(feed.delivered().series().times(), truth.series().times());
        assert_eq!(
            feed.delivered().series().values(),
            truth.series().values()
        );
        let snap = feed.poll(9 * DAY, 0).unwrap();
        let upto = truth.series().index_at(9 * DAY).unwrap();
        assert_eq!(snap.series().times(), &truth.series().times()[..=upto]);
    }

    #[test]
    fn throttling_is_per_attempt_and_deterministic() {
        let truth = truth();
        let plan = FaultPlan {
            throttle_prob: 0.5,
            ..FaultPlan::none(23)
        };
        let feed = FaultyFeed::new(truth, plan);
        let mut throttled = 0;
        let mut ok = 0;
        for now in (0..5 * DAY).step_by(900) {
            for attempt in 0..4 {
                match feed.poll(now, attempt) {
                    Err(FeedError::Throttled) => throttled += 1,
                    Ok(_) => ok += 1,
                    Err(e) => panic!("unexpected {e:?}"),
                }
                assert_eq!(feed.poll(now, attempt).is_ok(), feed.poll(now, attempt).is_ok());
            }
        }
        assert!(throttled > 0 && ok > 0);
        let total = (throttled + ok) as f64;
        let rate = throttled as f64 / total;
        assert!((0.4..0.6).contains(&rate), "throttle rate {rate}");
    }

    #[test]
    fn snapshots_are_valid_histories_under_hostile_plans() {
        let truth = truth();
        let feed = FaultyFeed::new(truth, hostile());
        for t in (0..10 * DAY).step_by(5 * 3600) {
            if let Ok(snap) = feed.poll(t, 0) {
                // Strictly increasing times are asserted by TimeSeries;
                // also check nothing from the future leaked in.
                if !snap.is_empty() {
                    assert!(snap.time(snap.len() - 1) <= t);
                }
                assert!(snap
                    .series()
                    .values()
                    .iter()
                    .all(|&v| v > 0));
            }
        }
    }

    #[test]
    fn launch_faults_gate_on_windows_and_requests() {
        let cat = Catalog::standard();
        let combo = Combo::new(
            Az::parse("us-east-1b").unwrap(),
            cat.type_id("c4.large").unwrap(),
        );
        let none = LaunchFaults::none();
        assert!(!none.capacity_exhausted(combo, 0));
        assert!(!none.throttled(combo, 0, 0));

        let f = LaunchFaults::with_intensity(7, 1.0);
        f.validate();
        // Capacity is constant within a window.
        let mut exhausted = 0;
        for w in 0..200u64 {
            let t = w * f.capacity_window;
            let a = f.capacity_exhausted(combo, t);
            let b = f.capacity_exhausted(combo, t + f.capacity_window - 1);
            assert_eq!(a, b, "window {w} must be uniform");
            exhausted += a as u64;
        }
        let rate = exhausted as f64 / 200.0;
        assert!((0.05..0.20).contains(&rate), "capacity rate {rate}");
        // Throttling varies with the request ordinal at fixed (combo, t).
        let distinct: std::collections::HashSet<bool> =
            (0..32).map(|n| f.throttled(combo, 1234, n)).collect();
        assert_eq!(distinct.len(), 2, "both outcomes must occur");
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn invalid_plan_is_rejected() {
        FaultPlan {
            drop_prob: 1.5,
            ..FaultPlan::none(0)
        }
        .validate();
    }

    #[test]
    fn shard_faults_are_deterministic_and_distinct() {
        let window = (1_000_000, 1_000_600);
        let a = ShardFaults::sample(42, 4, window, 1, 1, 1);
        let b = ShardFaults::sample(42, 4, window, 1, 1, 1);
        assert_eq!(a, b, "same seed must produce the same plan");
        let c = ShardFaults::sample(43, 4, window, 1, 1, 1);
        assert_ne!(a, c, "different seed must produce a different plan");
        let victims: std::collections::HashSet<usize> =
            a.faults().iter().map(|f| f.shard).collect();
        assert_eq!(victims.len(), 3, "victims must be distinct shards");
        for f in a.faults() {
            assert!(f.from >= window.0 + 150 && f.from < window.1);
            if f.kind == ShardFaultKind::Kill {
                assert_eq!(f.until, u64::MAX, "kills never heal");
            } else {
                assert!(f.until <= window.1);
            }
        }
    }

    #[test]
    fn shard_fault_active_prefers_most_severe() {
        let plan = ShardFaults::with(
            2,
            vec![
                ShardFault {
                    shard: 0,
                    kind: ShardFaultKind::Slow,
                    from: 100,
                    until: 300,
                },
                ShardFault {
                    shard: 0,
                    kind: ShardFaultKind::Kill,
                    from: 200,
                    until: u64::MAX,
                },
            ],
        );
        assert_eq!(plan.active(0, 50), None);
        assert_eq!(plan.active(0, 150), Some(ShardFaultKind::Slow));
        assert_eq!(plan.active(0, 250), Some(ShardFaultKind::Kill));
        assert_eq!(plan.active(1, 250), None, "other shards are unaffected");
        assert!(!plan.is_zero());
        assert!(ShardFaults::none(2).is_zero());
        assert_eq!(ShardFaults::none(2).label(), "none");
        assert_eq!(plan.label(), "slow@0:100+kill@0:200");
    }

    #[test]
    #[should_panic(expected = "victims but only")]
    fn shard_faults_reject_too_many_victims() {
        ShardFaults::sample(1, 2, (0, 100), 2, 1, 0);
    }
}
