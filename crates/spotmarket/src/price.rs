//! Exact fixed-point prices.
//!
//! The Spot tier's smallest cost increment is $0.0001 (paper §3.2: DrAFTS
//! adds exactly one such tick to its price bound). Prices are therefore
//! stored as a `u64` tick count — market clearing, billing and bid
//! comparisons are exact, with no float accumulation drift.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// Ticks per dollar.
pub const TICKS_PER_DOLLAR: u64 = 10_000;

/// A non-negative price in ticks of $0.0001.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Price(u64);

impl Price {
    /// The zero price.
    pub const ZERO: Price = Price(0);
    /// One tick — $0.0001, the Spot interface's minimum increment.
    pub const TICK: Price = Price(1);
    /// Largest representable price (sentinel for "bid infinitely high").
    pub const MAX: Price = Price(u64::MAX);

    /// Constructs from raw ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        Price(ticks)
    }

    /// Constructs from dollars, rounding to the nearest tick.
    ///
    /// # Panics
    /// Panics on negative, NaN or non-finite input.
    pub fn from_dollars(d: f64) -> Self {
        assert!(d.is_finite() && d >= 0.0, "invalid dollar amount: {d}");
        Price((d * TICKS_PER_DOLLAR as f64).round() as u64)
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Value in dollars (lossy only beyond 2^53 ticks).
    pub fn dollars(self) -> f64 {
        self.0 as f64 / TICKS_PER_DOLLAR as f64
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Price) -> Price {
        Price(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: Price) -> Price {
        Price(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a non-negative factor, rounding to the nearest tick.
    ///
    /// # Panics
    /// Panics on negative, NaN or non-finite factors.
    pub fn scale(self, factor: f64) -> Price {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale factor: {factor}"
        );
        Price((self.0 as f64 * factor).round() as u64)
    }

    /// Multiplies by `hours` of usage (integer), saturating.
    pub fn times(self, n: u64) -> Price {
        Price(self.0.saturating_mul(n))
    }

    /// Returns the larger of two prices.
    pub fn max(self, other: Price) -> Price {
        Price(self.0.max(other.0))
    }

    /// Returns the smaller of two prices.
    pub fn min(self, other: Price) -> Price {
        Price(self.0.min(other.0))
    }

    /// Whether this price is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Price {
    type Output = Price;
    fn add(self, rhs: Price) -> Price {
        Price(
            self.0
                .checked_add(rhs.0)
                .expect("price addition overflowed"),
        )
    }
}

impl AddAssign for Price {
    fn add_assign(&mut self, rhs: Price) {
        *self = *self + rhs;
    }
}

impl Sub for Price {
    type Output = Price;
    fn sub(self, rhs: Price) -> Price {
        Price(
            self.0
                .checked_sub(rhs.0)
                .expect("price subtraction underflowed"),
        )
    }
}

impl Sum for Price {
    fn sum<I: Iterator<Item = Price>>(iter: I) -> Price {
        iter.fold(Price::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dollars = self.0 / TICKS_PER_DOLLAR;
        let frac = self.0 % TICKS_PER_DOLLAR;
        write!(f, "${dollars}.{frac:04}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dollars_round_trip() {
        let p = Price::from_dollars(2.1001);
        assert_eq!(p.ticks(), 21_001);
        assert!((p.dollars() - 2.1001).abs() < 1e-12);
    }

    #[test]
    fn rounding_to_nearest_tick() {
        assert_eq!(Price::from_dollars(0.00014).ticks(), 1);
        assert_eq!(Price::from_dollars(0.00016).ticks(), 2);
        assert_eq!(Price::from_dollars(0.0).ticks(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid dollar amount")]
    fn rejects_negative_dollars() {
        Price::from_dollars(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid dollar amount")]
    fn rejects_nan_dollars() {
        Price::from_dollars(f64::NAN);
    }

    #[test]
    fn arithmetic() {
        let a = Price::from_ticks(100);
        let b = Price::from_ticks(30);
        assert_eq!(a + b, Price::from_ticks(130));
        assert_eq!(a - b, Price::from_ticks(70));
        let mut c = a;
        c += b;
        assert_eq!(c.ticks(), 130);
        assert_eq!(a.times(3).ticks(), 300);
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn subtraction_underflow_panics() {
        let _ = Price::from_ticks(1) - Price::from_ticks(2);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Price::MAX.saturating_add(Price::TICK), Price::MAX);
        assert_eq!(
            Price::from_ticks(1).saturating_sub(Price::from_ticks(5)),
            Price::ZERO
        );
    }

    #[test]
    fn scaling() {
        let od = Price::from_dollars(0.105); // c4.large-era On-demand
        assert_eq!(od.scale(0.8).ticks(), 840);
        assert_eq!(od.scale(0.0), Price::ZERO);
        assert_eq!(od.scale(1.0), od);
    }

    #[test]
    #[should_panic(expected = "invalid scale factor")]
    fn scale_rejects_negative() {
        Price::TICK.scale(-0.5);
    }

    #[test]
    fn ordering_and_min_max() {
        let lo = Price::from_ticks(5);
        let hi = Price::from_ticks(9);
        assert!(lo < hi);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
    }

    #[test]
    fn display_formats_four_decimals() {
        assert_eq!(Price::from_ticks(21_001).to_string(), "$2.1001");
        assert_eq!(Price::from_ticks(7).to_string(), "$0.0007");
        assert_eq!(Price::ZERO.to_string(), "$0.0000");
        assert_eq!(Price::from_dollars(9.5).to_string(), "$9.5000");
    }

    #[test]
    fn sum_of_prices() {
        let total: Price = [1u64, 2, 3].iter().map(|&t| Price::from_ticks(t)).sum();
        assert_eq!(total.ticks(), 6);
    }
}
