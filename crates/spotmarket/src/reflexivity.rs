//! Reflexivity: what happens to a spot market when its participants bid
//! with DrAFTS?
//!
//! The paper's stated future work (§6): "analyze the degree to which the
//! availability of DrAFTS predictions may affect the market they are
//! serving. It is clear that widespread use of DrAFTS (if it were to
//! occur) would change the pricing dynamics of the Amazon Spot tier."
//!
//! This module implements that experiment on the mechanistic market: a
//! configurable fraction of arriving participants replace their private
//! lognormal bid draw with a QBETS upper bound on the clearing prices
//! observed so far (plus the DrAFTS tick premium). The experiment then
//! measures how adoption changes (a) the mean clearing price, (b) its
//! volatility, and (c) the revocation rate experienced by the DrAFTS
//! bidders themselves — the feedback loop the authors worried about.
//!
//! The measured answer (see the tests and `repro reflexivity`): at full
//! adoption, prices and volatility collapse — every bid clusters one
//! tick above the historical bound, the heavy upper tail of private bids
//! that used to set the clearing price disappears, and bound and price
//! descend together into a tight band near the reserve. At intermediate
//! adoption the feedback is *non-monotone and unstable*: the bound
//! alternately chases and suppresses its own effect, so mean prices at
//! 25/50/75% adoption scatter above and below the baseline depending on
//! the realized shocks. Either way the authors' suspicion is confirmed:
//! widespread DrAFTS use "would change the pricing dynamics" — and a
//! predictor cannot remain calibrated about a market it dominates.

use crate::agents::AgentConfig;
use crate::market::{Market, RequestId};
use crate::price::Price;
use simrng::dist::{Exponential, LogNormal, Poisson};
use simrng::{Rng, Xoshiro256pp};
use tsforecast::{BoundEstimator, Qbets, QbetsConfig};

/// Reflexivity experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ReflexivityConfig {
    /// Fraction of arrivals bidding with DrAFTS instead of privately.
    pub adoption: f64,
    /// Quantile the DrAFTS bidders target (sqrt of their durability p).
    pub quantile: f64,
    /// Base demand/supply process.
    pub agents: AgentConfig,
    /// Warm-up ticks before measurement starts (QBETS needs history and
    /// the book needs to fill).
    pub warmup: u64,
    /// Measured ticks.
    pub ticks: u64,
}

impl Default for ReflexivityConfig {
    fn default() -> Self {
        Self {
            adoption: 0.5,
            quantile: 0.975,
            agents: AgentConfig::default(),
            warmup: 600,
            ticks: 2000,
        }
    }
}

impl ReflexivityConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on out-of-range fields.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.adoption),
            "adoption must be in [0,1]"
        );
        assert!(
            self.quantile > 0.0 && self.quantile < 1.0,
            "quantile must be in (0,1)"
        );
        assert!(self.ticks > 0, "need measured ticks");
    }
}

/// What one adoption level measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReflexivityOutcome {
    /// DrAFTS adoption fraction.
    pub adoption: f64,
    /// Mean clearing price over the measured window.
    pub mean_price: f64,
    /// Coefficient of variation of the clearing price (volatility).
    pub price_cv: f64,
    /// Fraction of DrAFTS-bid requests evicted by later clearings.
    pub drafts_revocation_rate: f64,
    /// Fraction of privately-bid requests evicted by later clearings.
    pub private_revocation_rate: f64,
}

/// Runs one adoption level.
pub fn run(cfg: &ReflexivityConfig, od: Price, mut rng: Xoshiro256pp) -> ReflexivityOutcome {
    cfg.validate();
    let a = cfg.agents;
    let reserve = od.scale(a.reserve_frac).max(Price::TICK);
    let mut market = Market::new(reserve, a.supply);
    let arrivals = Poisson::new(a.arrival_rate).expect("rate");
    let bid_dist = LogNormal::new(a.bid_ln_mu, a.bid_ln_sd).expect("bid");
    let qty_dist = Poisson::new(a.qty_mean.max(1.0) - 1.0).expect("qty");
    let lifetime = Exponential::new(1.0 / a.mean_lifetime.max(1e-9)).expect("life");

    let mut qbets = Qbets::new(QbetsConfig::default());
    let mut live: Vec<(RequestId, u64, bool)> = Vec::new(); // (id, expiry, is_drafts)
    let mut prices = Vec::with_capacity(cfg.ticks as usize);
    let mut submitted = [0u64; 2]; // [private, drafts]
    let mut revoked = [0u64; 2];

    for tick in 1..=(cfg.warmup + cfg.ticks) {
        // Departures.
        let mut gone = Vec::new();
        live.retain(|&(id, expiry, _)| {
            if expiry <= tick {
                gone.push(id);
                false
            } else {
                true
            }
        });
        for id in gone {
            market.cancel(id);
        }

        // Arrivals: DrAFTS adopters bid the QBETS bound when available.
        let n = arrivals.sample(&mut rng);
        for _ in 0..n {
            let is_drafts = rng.next_bool(cfg.adoption);
            let bid = if is_drafts {
                match qbets.upper_bound(cfg.quantile) {
                    Some(b) => Price::from_ticks(b) + Price::TICK,
                    // Cold start: everything seen plus a tick.
                    None => Price::from_ticks(
                        prices.last().copied().unwrap_or(reserve.ticks()),
                    ) + Price::TICK,
                }
            } else {
                od.scale(bid_dist.sample(&mut rng).min(12.0)).max(Price::TICK)
            };
            let qty = 1 + qty_dist.sample(&mut rng);
            let life = lifetime.sample(&mut rng).ceil().max(1.0) as u64;
            let id = market.submit(bid, qty);
            live.push((id, tick + life, is_drafts));
            if tick > cfg.warmup {
                submitted[is_drafts as usize] += 1;
            }
        }

        // Supply walk.
        if rng.next_bool(a.supply_step_rate) {
            let s = market.supply() as f64;
            let delta = (rng.next_f64() * 2.0 - 1.0) * a.supply_step_frac * s;
            market.set_supply((s + delta).round().max(1.0) as u64);
        }

        let clearing = market.clear();
        qbets.observe(clearing.price.ticks());
        if tick > cfg.warmup {
            prices.push(clearing.price.ticks());
            for id in &clearing.outbid {
                if let Some(&(_, _, is_drafts)) =
                    live.iter().find(|(lid, _, _)| lid == id)
                {
                    revoked[is_drafts as usize] += 1;
                }
            }
        }
        let outbid: std::collections::HashSet<RequestId> =
            clearing.outbid.iter().copied().collect();
        live.retain(|(id, _, _)| !outbid.contains(id));
    }

    let n = prices.len() as f64;
    let mean = prices.iter().map(|&p| p as f64).sum::<f64>() / n;
    let var = prices
        .iter()
        .map(|&p| (p as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    let rate = |i: usize| {
        if submitted[i] == 0 {
            0.0
        } else {
            revoked[i] as f64 / submitted[i] as f64
        }
    };
    ReflexivityOutcome {
        adoption: cfg.adoption,
        mean_price: mean / crate::price::TICKS_PER_DOLLAR as f64,
        price_cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        drafts_revocation_rate: rate(1),
        private_revocation_rate: rate(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::SeedableFrom;

    fn outcome(adoption: f64, seed: u64) -> ReflexivityOutcome {
        let cfg = ReflexivityConfig {
            adoption,
            ..ReflexivityConfig::default()
        };
        run(
            &cfg,
            Price::from_dollars(0.105),
            Xoshiro256pp::seed_from_u64(seed),
        )
    }

    /// Individual runs are chaotic (one supply shock reshapes a whole
    /// window); regime claims are made about seed-averaged behaviour.
    fn averaged(adoption: f64) -> ReflexivityOutcome {
        let runs: Vec<ReflexivityOutcome> =
            (0..8).map(|s| outcome(adoption, 100 + s)).collect();
        let n = runs.len() as f64;
        ReflexivityOutcome {
            adoption,
            mean_price: runs.iter().map(|o| o.mean_price).sum::<f64>() / n,
            price_cv: runs.iter().map(|o| o.price_cv).sum::<f64>() / n,
            drafts_revocation_rate: runs
                .iter()
                .map(|o| o.drafts_revocation_rate)
                .sum::<f64>()
                / n,
            private_revocation_rate: runs
                .iter()
                .map(|o| o.private_revocation_rate)
                .sum::<f64>()
                / n,
        }
    }

    #[test]
    fn zero_adoption_has_no_drafts_traffic() {
        let o = outcome(0.0, 1);
        assert_eq!(o.drafts_revocation_rate, 0.0);
        assert!(o.mean_price > 0.0);
        assert!(o.price_cv > 0.0, "a live market moves");
    }

    #[test]
    fn intermediate_adoption_destabilizes_rather_than_tracks() {
        // The interesting non-result: mixed markets are NOT a smooth
        // interpolation between the endpoints — the feedback makes the
        // averaged mid-adoption prices deviate from the baseline in
        // either direction rather than matching it.
        let base = averaged(0.0);
        let half = averaged(0.5);
        let deviation = (half.mean_price - base.mean_price).abs() / base.mean_price;
        assert!(
            deviation > 0.05,
            "mid-adoption price should deviate measurably, got {deviation}"
        );
    }

    #[test]
    fn full_adoption_collapses_price_volatility_and_revocations() {
        // At full adoption everyone sits at bound-plus-tick and the
        // market coordinates into a tight band near the reserve
        // (seed-averaged; a single run can be dominated by one shock).
        let base = averaged(0.0);
        let full = averaged(1.0);
        assert!(
            full.mean_price < base.mean_price,
            "full-adoption mean {} vs baseline {}",
            full.mean_price,
            base.mean_price
        );
        assert!(
            full.price_cv < base.price_cv,
            "volatility must shrink: {} vs {}",
            full.price_cv,
            base.price_cv
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(outcome(0.5, 9), outcome(0.5, 9));
    }

    #[test]
    #[should_panic(expected = "adoption")]
    fn rejects_bad_adoption() {
        ReflexivityConfig {
            adoption: 1.5,
            ..ReflexivityConfig::default()
        }
        .validate();
    }
}
