//! Synthetic spot-price trace generation.
//!
//! Stand-in for the paper's (now unavailable) 18 months of recorded price
//! histories; see DESIGN.md §2 for the substitution argument. Dynamics run
//! in log-price space on a 5-minute update grid (the periodicity the paper
//! observes, §2.1):
//!
//! ```text
//! level_t  = level_{t-1} (+ Normal(0, regime_spread) with prob regime_rate)
//! x_t      = level_t + phi (x_{t-1} - level_t) + Normal(0, sigma)
//! d_t      = diurnal_amp * sin(2 pi (t mod day)/day + phase)
//! price_t  = clamp(exp(x_t + d_t) * spike_t, floor, cap)
//! ```
//!
//! with sticky *publication hysteresis* on top (a new market price is
//! announced only when the latent state moves beyond a per-archetype
//! band), producing the plateau-dominated, piecewise-constant series real
//! spot markets show, stationary segments separated by genuine change
//! points, heavy-tailed upward spikes with geometric holding times,
//! optional daily seasonality, and the `PinnedAbove` floor of one tick
//! above On-demand — the statistical features DrAFTS, its baselines, and
//! the paper's qualitative observations all key on.

use crate::archetype::{self, Archetype};
use crate::catalog::Catalog;
use crate::history::PriceHistory;
use crate::price::Price;
use crate::types::Combo;
use crate::UPDATE_PERIOD;
use simrng::dist::Normal;
use simrng::{Rng, StreamFactory};
use tsforecast::TimeSeries;

/// Trace generation window and seeding.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// First update timestamp (seconds).
    pub start: u64,
    /// End of the window (exclusive).
    pub end: u64,
    /// Experiment seed; combos derive independent streams from it.
    pub seed: u64,
}

impl TraceConfig {
    /// A window of `days` days starting at t = 0.
    pub fn days(days: u64, seed: u64) -> Self {
        Self {
            start: 0,
            end: days * crate::DAY,
            seed,
        }
    }

    /// Number of 5-minute updates in the window.
    pub fn steps(&self) -> u64 {
        (self.end.saturating_sub(self.start)) / UPDATE_PERIOD
    }
}

/// Generates the price history for one combo.
///
/// Deterministic in `(cfg.seed, combo)`: the same pair always yields the
/// identical trace regardless of what else the experiment generates.
pub fn generate(combo: Combo, catalog: &Catalog, cfg: &TraceConfig) -> PriceHistory {
    let arch = archetype::assign(combo, catalog, cfg.seed);
    generate_with_archetype(combo, catalog, cfg, arch)
}

/// Generates with an explicit archetype (tests and ablations).
pub fn generate_with_archetype(
    combo: Combo,
    catalog: &Catalog,
    cfg: &TraceConfig,
    arch: Archetype,
) -> PriceHistory {
    assert!(cfg.end > cfg.start, "empty trace window");
    let p = arch.params();
    let od = catalog.od_price(combo.ty, combo.az.region());
    let od_d = od.dollars();

    let factory = StreamFactory::new(cfg.seed);
    let mut rng = factory.stream("tracegen", combo.key());

    let noise = Normal::new(0.0, p.sigma).expect("sigma validated by params");
    let regime_jump = Normal::new(0.0, p.regime_spread).expect("spread validated");
    let spike_ln = Normal::new(p.spike_ln_mean, p.spike_ln_sd).expect("spike validated");

    // Floors/caps in dollars. PinnedAbove markets never quote below
    // On-demand + 1 tick (the cg1.4xlarge phenomenon of §4.1.2).
    let floor_d = if arch == Archetype::PinnedAbove {
        (od + Price::TICK).dollars()
    } else {
        (od_d * p.floor_frac).max(Price::TICK.dollars())
    };
    let cap_d = od_d * p.cap_frac;

    let mut level = (od_d * p.base_frac).ln();
    let mut x = level + noise.sample(&mut rng) * 3.0; // start off-mean
    let phase = rng.next_f64() * std::f64::consts::TAU;

    // Spike state: multiplicative factor > 1 while active.
    let mut spike_mult = 1.0f64;
    let mut spike_left = 0u64;
    let spike_continue = 1.0 - 1.0 / p.spike_steps_mean.max(1.0);

    let steps = cfg.steps();
    let mut series = TimeSeries::with_capacity(steps as usize);
    let mut t = cfg.start;
    // Publication hysteresis state: the last announced log price.
    let mut published_ln: Option<f64> = None;
    for step in 0..steps {
        // Secular calming: excursion rates decay geometrically across the
        // trace (see `archetype::ERA_START_MULT`) — most excursion mass
        // lands early, leaving the evaluation era quiet the way 2016's
        // stabilizing spot markets were.
        let era = if p.era_immune {
            1.0
        } else {
            let frac = step as f64 / steps.max(1) as f64;
            archetype::ERA_START_MULT
                * (archetype::ERA_END_MULT / archetype::ERA_START_MULT).powf(frac)
        };
        if rng.next_bool((p.regime_rate * era).min(1.0)) {
            level += regime_jump.sample(&mut rng);
            // Keep regimes from drifting out of the representable band.
            level = level.clamp((floor_d * 0.5).max(1e-6).ln(), (cap_d * 1.5).ln());
        }
        x = level + p.phi * (x - level) + noise.sample(&mut rng);
        let diurnal = p.diurnal_amp
            * ((std::f64::consts::TAU * (t % crate::DAY) as f64 / crate::DAY as f64) + phase)
                .sin();

        if spike_left > 0 {
            spike_left -= 1;
            if spike_left == 0 {
                spike_mult = 1.0;
            }
        } else if rng.next_bool((p.spike_rate * era).min(1.0)) {
            // Era also scales spike magnitude: early-era excursions were
            // taller, so a history's upper quantiles are dominated by old
            // spikes that the calmer evaluation era rarely revisits.
            spike_mult = (spike_ln.sample(&mut rng) * era.powf(0.4))
                .exp()
                .max(1.0);
            // Geometric holding time with the configured mean.
            spike_left = 1;
            while rng.next_bool(spike_continue) {
                spike_left += 1;
            }
        }

        let raw_d = ((x + diurnal).exp() * spike_mult).clamp(floor_d, cap_d);
        // Sticky publication: re-announce the previous price unless the
        // latent state moved beyond the hysteresis band (spikes always
        // clear it by construction of their magnitudes).
        let publish = match published_ln {
            Some(last) => (raw_d.ln() - last).abs() > p.hysteresis,
            None => true,
        };
        if publish {
            published_ln = Some(raw_d.ln());
        }
        let price_d = published_ln.expect("published on first step").exp();
        let price_d = price_d.clamp(floor_d, cap_d);
        series.push(t, Price::from_dollars(price_d).ticks().max(1));
        t += UPDATE_PERIOD;
    }
    PriceHistory::new(combo, series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Az, Region};

    fn catalog() -> &'static Catalog {
        Catalog::standard()
    }

    fn combo_named(ty: &str, az: &str) -> Combo {
        Combo::new(
            Az::parse(az).unwrap(),
            catalog().type_id(ty).unwrap(),
        )
    }

    #[test]
    fn trace_covers_window_on_update_grid() {
        let cfg = TraceConfig::days(7, 1);
        let h = generate(combo_named("c4.large", "us-east-1b"), catalog(), &cfg);
        assert_eq!(h.len() as u64, cfg.steps());
        assert_eq!(h.time(0), 0);
        assert_eq!(h.time(1) - h.time(0), UPDATE_PERIOD);
        assert!(h.time(h.len() - 1) < cfg.end);
    }

    #[test]
    fn traces_are_deterministic_per_seed_and_combo() {
        let cfg = TraceConfig::days(3, 7);
        let c = combo_named("m3.large", "us-west-2a");
        let a = generate(c, catalog(), &cfg);
        let b = generate(c, catalog(), &cfg);
        assert_eq!(a.series(), b.series());
        let other_seed = generate(c, catalog(), &TraceConfig::days(3, 8));
        assert_ne!(a.series(), other_seed.series());
        let other_combo = generate(combo_named("m3.large", "us-west-2b"), catalog(), &cfg);
        assert_ne!(a.series(), other_combo.series());
    }

    #[test]
    fn calm_market_stays_well_below_on_demand() {
        let cfg = TraceConfig::days(30, 11);
        let c = combo_named("m1.large", "us-west-2c"); // pinned Calm
        let h = generate(c, catalog(), &cfg);
        let od = catalog().od_price(c.ty, Region::UsWest2);
        let above = (0..h.len()).filter(|&i| h.price(i) >= od).count();
        assert_eq!(above, 0, "calm market should never cross On-demand");
        // And it genuinely moves a little.
        assert!(h.max_price().unwrap() > h.min_price().unwrap());
    }

    #[test]
    fn pinned_market_never_quotes_below_on_demand_plus_tick() {
        let cfg = TraceConfig::days(30, 11);
        let c = combo_named("cg1.4xlarge", "us-east-1c");
        let h = generate(c, catalog(), &cfg);
        let od = catalog().od_price(c.ty, Region::UsEast1);
        let min = h.min_price().unwrap();
        assert!(
            min >= od + Price::TICK,
            "min {min} must exceed On-demand {od} (paper §4.1.2)"
        );
    }

    #[test]
    fn volatile_market_spans_a_wide_range() {
        let cfg = TraceConfig::days(60, 11);
        let c = combo_named("c4.4xlarge", "us-east-1e"); // pinned Volatile
        let h = generate(c, catalog(), &cfg);
        let (lo, hi) = (h.min_price().unwrap(), h.max_price().unwrap());
        let ratio = hi.ticks() as f64 / lo.ticks() as f64;
        assert!(
            ratio > 15.0,
            "volatile market ratio {ratio} (paper saw ~73x over months)"
        );
        // It must also cross On-demand sometimes (why OD bids fail).
        let od = catalog().od_price(c.ty, Region::UsEast1);
        assert!(hi > od);
    }

    #[test]
    fn prices_respect_cap_and_floor() {
        let cfg = TraceConfig::days(30, 3);
        for (ty, az) in [("c3.2xlarge", "us-west-1a"), ("g2.2xlarge", "us-west-2b")] {
            let c = combo_named(ty, az);
            let h = generate(c, catalog(), &cfg);
            let od = catalog().od_price(c.ty, c.az.region());
            let cap = od.scale(12.0);
            assert!(h.max_price().unwrap() <= cap);
            assert!(h.min_price().unwrap() >= Price::TICK);
        }
    }

    #[test]
    fn spiky_market_has_rare_tall_excursions() {
        let cfg = TraceConfig::days(60, 5);
        let c = combo_named("r3.large", "us-west-2a");
        let h = generate_with_archetype(c, catalog(), &cfg, Archetype::Spiky);
        let values = h.series().values();
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let spike_points = values.iter().filter(|&&v| v > median * 3).count();
        let frac = spike_points as f64 / values.len() as f64;
        assert!(frac > 0.001, "expected some spikes, got {frac}");
        assert!(frac < 0.10, "spikes must be rare, got {frac}");
    }

    #[test]
    fn diurnal_market_correlates_with_time_of_day() {
        let cfg = TraceConfig::days(30, 5);
        let c = combo_named("m4.xlarge", "us-east-1b");
        let h = generate_with_archetype(c, catalog(), &cfg, Archetype::Diurnal);
        // Average price per hour-of-day bucket should show real amplitude.
        let mut sums = [0.0f64; 24];
        let mut counts = [0usize; 24];
        for i in 0..h.len() {
            let hour = (h.time(i) % crate::DAY) / crate::HOUR;
            sums[hour as usize] += h.price(i).dollars();
            counts[hour as usize] += 1;
        }
        let means: Vec<f64> = (0..24).map(|i| sums[i] / counts[i] as f64).collect();
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi / lo > 1.3, "diurnal amplitude too small: {lo}..{hi}");
    }

    #[test]
    fn regime_changes_produce_changepoints_qbets_can_see() {
        use tsforecast::{BoundEstimator, Qbets, QbetsConfig};
        let cfg = TraceConfig::days(90, 17);
        let c = combo_named("c3.xlarge", "us-west-2b");
        let h = generate_with_archetype(c, catalog(), &cfg, Archetype::Volatile);
        let mut q = Qbets::new(QbetsConfig::default());
        for &v in h.series().values() {
            q.observe(v);
        }
        assert!(
            q.changepoint_count() >= 2,
            "volatile 90-day trace should contain detectable regime shifts, got {}",
            q.changepoint_count()
        );
    }

    #[test]
    #[should_panic(expected = "empty trace window")]
    fn rejects_empty_window() {
        let cfg = TraceConfig {
            start: 100,
            end: 100,
            seed: 1,
        };
        generate(combo_named("c4.large", "us-east-1b"), catalog(), &cfg);
    }
}
