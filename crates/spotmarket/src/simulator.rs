//! Post-facto launch simulator.
//!
//! Replays instance requests against pre-generated price histories, exactly
//! the way the paper's backtests and replay experiments evaluate bids: a
//! request at time `t` with maximum bid `b` is accepted iff `b` exceeds the
//! market price at `t`, and the instance's fate — the first later update
//! with price `>= b` — is fully determined by the history. The simulator
//! tracks lifecycles and computes actual and worst-case costs.

use crate::billing::{self, EndReason};
use crate::catalog::Catalog;
use crate::faults::LaunchFaults;
use crate::history::{PriceHistory, Survival};
use crate::lifecycle::{Instance, InstanceId, InstanceState, TerminationReason};
use crate::price::Price;
use crate::tracegen::{self, TraceConfig};
use crate::types::Combo;
use std::collections::HashMap;

/// Why a request was not started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchError {
    /// The bid did not exceed the current market price.
    BidTooLow {
        /// The market price at request time.
        market_price: Price,
    },
    /// No price history covers the combo at the request time.
    NoMarketData,
    /// The AZ has no spare capacity for the type right now (EC2's
    /// `InsufficientInstanceCapacity`); transient — capacity windows pass.
    InsufficientCapacity,
    /// The launch API throttled the request (`RequestLimitExceeded`);
    /// transient — retry after a backoff.
    Throttled,
}

impl LaunchError {
    /// Whether retrying the same request later can succeed even if the
    /// market state does not change. Bid-too-low is *not* transient in
    /// this sense: it needs a price move or a higher bid, not a retry.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            LaunchError::InsufficientCapacity | LaunchError::Throttled
        )
    }
}

/// Launch simulator over a set of per-combo histories.
#[derive(Debug)]
pub struct SpotSimulator {
    catalog: &'static Catalog,
    trace_cfg: TraceConfig,
    histories: HashMap<u64, PriceHistory>,
    instances: Vec<Instance>,
    /// Price-termination time per instance, if its bid is ever reached.
    fates: Vec<Option<u64>>,
    launch_faults: LaunchFaults,
    /// Ordinal of the next launch request (throttling is per-request).
    request_seq: u64,
}

impl SpotSimulator {
    /// Creates a simulator that lazily generates combo histories with
    /// `trace_cfg`.
    pub fn new(catalog: &'static Catalog, trace_cfg: TraceConfig) -> Self {
        Self {
            catalog,
            trace_cfg,
            histories: HashMap::new(),
            instances: Vec::new(),
            fates: Vec::new(),
            launch_faults: LaunchFaults::none(),
            request_seq: 0,
        }
    }

    /// Injects seeded launch-API faults (insufficient capacity windows and
    /// request throttling) into subsequent [`Self::request`] calls. The
    /// default is [`LaunchFaults::none`], which gates nothing.
    pub fn set_launch_faults(&mut self, faults: LaunchFaults) {
        faults.validate();
        self.launch_faults = faults;
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &'static Catalog {
        self.catalog
    }

    /// Inserts a pre-built history (overriding lazy generation).
    pub fn insert_history(&mut self, history: PriceHistory) {
        self.histories.insert(history.combo().key(), history);
    }

    /// The history for `combo`, generating it on first use.
    pub fn history(&mut self, combo: Combo) -> &PriceHistory {
        self.histories
            .entry(combo.key())
            .or_insert_with(|| tracegen::generate(combo, self.catalog, &self.trace_cfg))
    }

    /// Market price of `combo` at `t`.
    pub fn price_at(&mut self, combo: Combo, t: u64) -> Option<Price> {
        self.history(combo).price_at(t)
    }

    /// Requests an instance. On success the instance starts running at `t`
    /// and its price-termination fate is sealed by the history.
    ///
    /// With launch faults configured, the request may instead fail with a
    /// transient [`LaunchError::Throttled`] or
    /// [`LaunchError::InsufficientCapacity`] — decided by stateless hashes
    /// of `(combo, t, ordinal)`, so the zero-fault path is byte-identical
    /// to a simulator without fault gating.
    pub fn request(&mut self, combo: Combo, bid: Price, t: u64) -> Result<InstanceId, LaunchError> {
        if !self.catalog.is_available(combo) {
            return Err(LaunchError::NoMarketData);
        }
        let nth = self.request_seq;
        self.request_seq += 1;
        if self.launch_faults.throttled(combo, t, nth) {
            return Err(LaunchError::Throttled);
        }
        if self.launch_faults.capacity_exhausted(combo, t) {
            return Err(LaunchError::InsufficientCapacity);
        }
        let history = self.history(combo);
        let fate = match history.survival(t, bid) {
            Survival::Rejected => {
                return match history.price_at(t) {
                    Some(market_price) => Err(LaunchError::BidTooLow { market_price }),
                    None => Err(LaunchError::NoMarketData),
                };
            }
            Survival::Terminated { at } => Some(at),
            Survival::Censored { .. } => None,
        };
        let id = InstanceId(self.instances.len() as u64);
        self.instances.push(Instance::launch(id, combo, bid, t));
        self.fates.push(fate);
        Ok(id)
    }

    /// Observes the instance at time `t`, applying any price termination
    /// that has occurred by then. Returns the (updated) state.
    pub fn poll(&mut self, id: InstanceId, t: u64) -> InstanceState {
        let idx = id.0 as usize;
        if self.instances[idx].is_running() {
            if let Some(fate) = self.fates[idx] {
                if fate <= t {
                    self.instances[idx].terminate(fate, TerminationReason::Price);
                }
            }
        }
        self.instances[idx].state()
    }

    /// User-terminates a running instance at `t`.
    ///
    /// If the market had already priced it out earlier, the price
    /// termination wins (it happened first); the returned state reflects
    /// whichever applies.
    pub fn terminate(&mut self, id: InstanceId, t: u64) -> InstanceState {
        let state = self.poll(id, t);
        let idx = id.0 as usize;
        if state == InstanceState::Running {
            self.instances[idx].terminate(t, TerminationReason::User);
        }
        self.instances[idx].state()
    }

    /// The instance record.
    pub fn instance(&self, id: InstanceId) -> &Instance {
        &self.instances[id.0 as usize]
    }

    /// Actual billed cost of an instance up to `now` (terminated instances
    /// bill to their termination; running ones accrue rounded-up hours).
    pub fn cost(&mut self, id: InstanceId, now: u64) -> Price {
        self.poll(id, now);
        let inst = &self.instances[id.0 as usize];
        let (duration, reason) = match inst.state() {
            InstanceState::Running => (inst.runtime(now), EndReason::Running),
            InstanceState::Terminated { at, reason } => {
                (at - inst.launched_at, reason.billing())
            }
        };
        let combo = inst.combo;
        let start = inst.launched_at;
        let history = self.history(combo);
        billing::instance_cost(history, start, duration, reason)
    }

    /// Worst-case (bid-valued) cost of an instance up to `now`.
    pub fn worst_case_cost(&mut self, id: InstanceId, now: u64) -> Price {
        self.poll(id, now);
        let inst = &self.instances[id.0 as usize];
        let (duration, reason) = match inst.state() {
            InstanceState::Running => (inst.runtime(now), EndReason::Running),
            InstanceState::Terminated { at, reason } => {
                (at - inst.launched_at, reason.billing())
            }
        };
        billing::worst_case_cost(inst.bid, duration, reason)
    }

    /// All launched instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Az;
    use tsforecast::TimeSeries;

    fn sim() -> SpotSimulator {
        SpotSimulator::new(Catalog::standard(), TraceConfig::days(30, 99))
    }

    fn fixed_history(combo: Combo, points: &[(u64, u64)]) -> PriceHistory {
        PriceHistory::new(combo, points.iter().copied().collect::<TimeSeries>())
    }

    fn combo() -> Combo {
        let cat = Catalog::standard();
        Combo::new(
            Az::parse("us-west-2a").unwrap(),
            cat.type_id("c4.large").unwrap(),
        )
    }

    #[test]
    fn lazy_history_generation_is_stable() {
        let mut s = sim();
        let c = combo();
        let p1 = s.price_at(c, 3600).unwrap();
        let p2 = s.price_at(c, 3600).unwrap();
        assert_eq!(p1, p2);
        assert!(s.history(c).len() > 1000);
    }

    #[test]
    fn request_rejected_when_bid_not_above_price() {
        let mut s = sim();
        let c = combo();
        s.insert_history(fixed_history(c, &[(0, 1000), (300, 1100)]));
        match s.request(c, Price::from_ticks(1000), 0) {
            Err(LaunchError::BidTooLow { market_price }) => {
                assert_eq!(market_price, Price::from_ticks(1000));
            }
            other => panic!("expected BidTooLow, got {other:?}"),
        }
    }

    #[test]
    fn unavailable_combo_is_no_market_data() {
        let cat = Catalog::standard();
        let missing = Az::all()
            .flat_map(|az| cat.type_ids().map(move |t| Combo::new(az, t)))
            .find(|&c| !cat.is_available(c))
            .expect("25 combos are excluded");
        let mut s = sim();
        assert_eq!(
            s.request(missing, Price::MAX, 0),
            Err(LaunchError::NoMarketData)
        );
    }

    #[test]
    fn instance_runs_until_price_crossing() {
        let mut s = sim();
        let c = combo();
        s.insert_history(fixed_history(
            c,
            &[(0, 100), (300, 120), (600, 200), (900, 100)],
        ));
        let id = s.request(c, Price::from_ticks(150), 0).unwrap();
        assert_eq!(s.poll(id, 300), InstanceState::Running);
        assert_eq!(
            s.poll(id, 600),
            InstanceState::Terminated {
                at: 600,
                reason: TerminationReason::Price
            }
        );
        // Polling later keeps the original termination time.
        assert_eq!(
            s.poll(id, 10_000),
            InstanceState::Terminated {
                at: 600,
                reason: TerminationReason::Price
            }
        );
    }

    #[test]
    fn user_termination_before_fate() {
        let mut s = sim();
        let c = combo();
        s.insert_history(fixed_history(c, &[(0, 100), (7200, 500)]));
        let id = s.request(c, Price::from_ticks(200), 0).unwrap();
        let st = s.terminate(id, 3600);
        assert_eq!(
            st,
            InstanceState::Terminated {
                at: 3600,
                reason: TerminationReason::User
            }
        );
    }

    #[test]
    fn user_termination_after_fate_is_price_termination() {
        let mut s = sim();
        let c = combo();
        s.insert_history(fixed_history(c, &[(0, 100), (600, 500)]));
        let id = s.request(c, Price::from_ticks(200), 0).unwrap();
        // User tries to stop at t=3600, but the market killed it at 600.
        let st = s.terminate(id, 3600);
        assert_eq!(
            st,
            InstanceState::Terminated {
                at: 600,
                reason: TerminationReason::Price
            }
        );
    }

    #[test]
    fn costs_match_billing_rules() {
        let mut s = sim();
        let c = combo();
        s.insert_history(fixed_history(c, &[(0, 100), (36_000, 100)]));
        let id = s.request(c, Price::from_ticks(300), 0).unwrap();
        s.terminate(id, 3300); // the paper's 3300 s experiments
        assert_eq!(s.cost(id, 36_000), Price::from_ticks(100), "1 billed hour");
        assert_eq!(
            s.worst_case_cost(id, 36_000),
            Price::from_ticks(300),
            "worst case bills the bid"
        );
    }

    #[test]
    fn launch_faults_gate_requests_transiently() {
        let c = combo();
        let mk = || {
            let mut s = sim();
            s.set_launch_faults(LaunchFaults::with_intensity(7, 1.0));
            s.insert_history(fixed_history(c, &[(0, 100)]));
            s
        };
        // Sweep requests across capacity windows: with intensity 1 some
        // fail transiently, some succeed, and the pattern is a pure
        // function of (combo, time, ordinal) — two simulators agree.
        let (mut a, mut b) = (mk(), mk());
        let mut failures = 0;
        let mut successes = 0;
        for i in 0..200u64 {
            let t = i * 1800;
            let ra = a.request(c, Price::from_ticks(200), t);
            let rb = b.request(c, Price::from_ticks(200), t);
            assert_eq!(ra, rb, "fault gating must be deterministic");
            match ra {
                Err(e) => {
                    assert!(e.is_transient(), "only transient faults expected");
                    failures += 1;
                }
                Ok(_) => successes += 1,
            }
        }
        assert!(failures > 0, "intensity 1 must inject some failures");
        assert!(successes > 0, "faults must not block every request");
        assert!(!LaunchError::BidTooLow {
            market_price: Price::from_ticks(1)
        }
        .is_transient());
        assert!(!LaunchError::NoMarketData.is_transient());
    }

    #[test]
    fn zero_faults_change_nothing() {
        let c = combo();
        let mut s = sim();
        s.set_launch_faults(LaunchFaults::none());
        s.insert_history(fixed_history(c, &[(0, 100)]));
        for i in 0..50u64 {
            assert!(s.request(c, Price::from_ticks(200), i * 60).is_ok());
        }
    }

    #[test]
    fn censored_instance_keeps_running() {
        let mut s = sim();
        let c = combo();
        s.insert_history(fixed_history(c, &[(0, 100)]));
        let id = s.request(c, Price::from_ticks(200), 0).unwrap();
        assert_eq!(s.poll(id, 1_000_000), InstanceState::Running);
        // Cost accrues rounded-up hours at the flat price.
        assert_eq!(s.cost(id, 5400), Price::from_ticks(200));
    }
}
