//! The instance-type catalog and market availability matrix.
//!
//! The paper's backtest covers "53 different instance types at the time of
//! the study, but not all instance types are available from all AZs",
//! yielding 452 AZ x type combinations across the nine study AZs (§4.1).
//! This module reproduces that universe: a 53-entry catalog of
//! 2016-era EC2 instance types with their us-east-1 On-demand prices
//! (regional prices scale by [`Region::od_multiplier`]), and a
//! deterministic availability matrix that excludes exactly 25 of the
//! 477 possible combos (477 - 25 = 452).

use crate::price::Price;
use crate::types::{Az, Combo, Region, TypeId};
use std::collections::HashSet;
use std::sync::OnceLock;

/// Broad capability class, used by job profiles to pick suitable types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Burstable/micro.
    Micro,
    /// General purpose (m-series).
    General,
    /// Compute optimized (c-series).
    Compute,
    /// Memory optimized (r/x/cr-series).
    Memory,
    /// Storage/dense-storage optimized (i/d/hi/hs-series).
    Storage,
    /// GPU/accelerated (g/p/cg-series).
    Gpu,
}

/// Static description of one instance type.
#[derive(Debug, Clone)]
pub struct InstanceSpec {
    /// AWS-style type name, e.g. `c4.large`.
    pub name: &'static str,
    /// Virtual CPU count.
    pub vcpus: u16,
    /// Memory in GiB.
    pub mem_gb: f32,
    /// Local instance storage in GB (0 for EBS-only).
    pub storage_gb: u32,
    /// Capability family.
    pub family: Family,
    /// Hourly On-demand price in us-east-1.
    pub od_us_east: Price,
}

/// Catalog row helper.
macro_rules! spec {
    ($name:literal, $vcpus:expr, $mem:expr, $disk:expr, $family:ident, $od:expr) => {
        InstanceSpec {
            name: $name,
            vcpus: $vcpus,
            mem_gb: $mem,
            storage_gb: $disk,
            family: Family::$family,
            od_us_east: Price::from_ticks(($od * 10_000.0) as u64),
        }
    };
}

fn build_specs() -> Vec<InstanceSpec> {
    // 2016-era EC2 current+previous generation types with approximate
    // us-east-1 On-demand prices (USD/hour). 53 entries, matching the
    // paper's study universe; prices include the examples the paper cites
    // (cg1.4xlarge $2.10, m1.large $0.175, c4.large ~$0.105).
    vec![
        spec!("t1.micro", 1, 0.613, 0, Micro, 0.020),
        spec!("m1.small", 1, 1.7, 160, General, 0.044),
        spec!("m1.medium", 1, 3.75, 410, General, 0.087),
        spec!("m1.large", 2, 7.5, 840, General, 0.175),
        spec!("m1.xlarge", 4, 15.0, 1680, General, 0.350),
        spec!("m3.medium", 1, 3.75, 4, General, 0.067),
        spec!("m3.large", 2, 7.5, 32, General, 0.133),
        spec!("m3.xlarge", 4, 15.0, 80, General, 0.266),
        spec!("m3.2xlarge", 8, 30.0, 160, General, 0.532),
        spec!("m4.large", 2, 8.0, 0, General, 0.108),
        spec!("m4.xlarge", 4, 16.0, 0, General, 0.215),
        spec!("m4.2xlarge", 8, 32.0, 0, General, 0.431),
        spec!("m4.4xlarge", 16, 64.0, 0, General, 0.862),
        spec!("m4.10xlarge", 40, 160.0, 0, General, 2.155),
        spec!("m4.16xlarge", 64, 256.0, 0, General, 3.447),
        spec!("c1.medium", 2, 1.7, 350, Compute, 0.130),
        spec!("c1.xlarge", 8, 7.0, 1680, Compute, 0.520),
        spec!("c3.large", 2, 3.75, 32, Compute, 0.105),
        spec!("c3.xlarge", 4, 7.5, 80, Compute, 0.210),
        spec!("c3.2xlarge", 8, 15.0, 160, Compute, 0.420),
        spec!("c3.4xlarge", 16, 30.0, 320, Compute, 0.840),
        spec!("c3.8xlarge", 32, 60.0, 640, Compute, 1.680),
        spec!("c4.large", 2, 3.75, 0, Compute, 0.105),
        spec!("c4.xlarge", 4, 7.5, 0, Compute, 0.209),
        spec!("c4.2xlarge", 8, 15.0, 0, Compute, 0.419),
        spec!("c4.4xlarge", 16, 30.0, 0, Compute, 0.838),
        spec!("c4.8xlarge", 36, 60.0, 0, Compute, 1.675),
        spec!("cc2.8xlarge", 32, 60.5, 3360, Compute, 2.000),
        spec!("cg1.4xlarge", 16, 22.5, 1690, Gpu, 2.100),
        spec!("cr1.8xlarge", 32, 244.0, 240, Memory, 3.500),
        spec!("r3.large", 2, 15.25, 32, Memory, 0.166),
        spec!("r3.xlarge", 4, 30.5, 80, Memory, 0.333),
        spec!("r3.2xlarge", 8, 61.0, 160, Memory, 0.665),
        spec!("r3.4xlarge", 16, 122.0, 320, Memory, 1.330),
        spec!("r3.8xlarge", 32, 244.0, 640, Memory, 2.660),
        spec!("r4.large", 2, 15.25, 0, Memory, 0.133),
        spec!("r4.xlarge", 4, 30.5, 0, Memory, 0.266),
        spec!("i2.xlarge", 4, 30.5, 800, Storage, 0.853),
        spec!("i2.2xlarge", 8, 61.0, 1600, Storage, 1.705),
        spec!("i2.4xlarge", 16, 122.0, 3200, Storage, 3.410),
        spec!("i2.8xlarge", 32, 244.0, 6400, Storage, 6.820),
        spec!("d2.xlarge", 4, 30.5, 6000, Storage, 0.690),
        spec!("d2.2xlarge", 8, 61.0, 12_000, Storage, 1.380),
        spec!("d2.4xlarge", 16, 122.0, 24_000, Storage, 2.760),
        spec!("d2.8xlarge", 36, 244.0, 48_000, Storage, 5.520),
        spec!("g2.2xlarge", 8, 15.0, 60, Gpu, 0.650),
        spec!("g2.8xlarge", 32, 60.0, 240, Gpu, 2.600),
        spec!("hi1.4xlarge", 16, 60.5, 2048, Storage, 3.100),
        spec!("hs1.8xlarge", 16, 117.0, 48_000, Storage, 4.600),
        spec!("x1.16xlarge", 64, 976.0, 1920, Memory, 6.669),
        spec!("x1.32xlarge", 128, 1952.0, 3840, Memory, 13.338),
        spec!("p2.xlarge", 4, 61.0, 0, Gpu, 0.900),
        spec!("p2.8xlarge", 32, 488.0, 0, Gpu, 7.200),
    ]
}

/// Number of AZ x type combinations that are *not* offered, chosen so the
/// available universe matches the paper's 452.
const EXCLUDED_COMBOS: usize = 25;

/// The instance-type catalog plus the availability matrix.
#[derive(Debug)]
pub struct Catalog {
    specs: Vec<InstanceSpec>,
    unavailable: HashSet<u64>,
}

impl Catalog {
    /// Builds the standard 53-type / 452-combo catalog.
    pub fn new() -> Self {
        let specs = build_specs();
        // Deterministically exclude the EXCLUDED_COMBOS combos with the
        // smallest salted hashes; older specialty types are likelier to be
        // missing in practice, but any fixed exclusion set exercises the
        // same code paths.
        let mut hashed: Vec<(u64, u64)> = Az::all()
            .flat_map(|az| {
                (0..specs.len() as u16).map(move |t| {
                    let key = Combo::new(az, TypeId(t)).key();
                    (mix(key ^ 0xDA_F7_5C_17), key)
                })
            })
            .collect();
        hashed.sort_unstable();
        let unavailable = hashed
            .iter()
            .take(EXCLUDED_COMBOS)
            .map(|&(_, key)| key)
            .collect();
        Self { specs, unavailable }
    }

    /// The shared global catalog.
    pub fn standard() -> &'static Catalog {
        static CATALOG: OnceLock<Catalog> = OnceLock::new();
        CATALOG.get_or_init(Catalog::new)
    }

    /// Number of instance types.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the catalog is empty (never, for the standard catalog).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All type ids.
    pub fn type_ids(&self) -> impl Iterator<Item = TypeId> + '_ {
        (0..self.specs.len() as u16).map(TypeId)
    }

    /// Specification of a type.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn spec(&self, ty: TypeId) -> &InstanceSpec {
        &self.specs[ty.index()]
    }

    /// Looks a type up by name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.specs
            .iter()
            .position(|s| s.name == name)
            .map(|i| TypeId(i as u16))
    }

    /// The On-demand hourly price of `ty` in `region`.
    pub fn od_price(&self, ty: TypeId, region: Region) -> Price {
        self.spec(ty).od_us_east.scale(region.od_multiplier())
    }

    /// Whether `combo` is offered in the Spot tier.
    pub fn is_available(&self, combo: Combo) -> bool {
        combo.ty.index() < self.specs.len() && !self.unavailable.contains(&combo.key())
    }

    /// All available combos, in (AZ, type) order.
    pub fn combos(&self) -> Vec<Combo> {
        Az::all()
            .flat_map(|az| self.type_ids().map(move |t| Combo::new(az, t)))
            .filter(|c| self.is_available(*c))
            .collect()
    }

    /// Available combos restricted to one AZ.
    pub fn combos_in_az(&self, az: Az) -> Vec<Combo> {
        self.type_ids()
            .map(|t| Combo::new(az, t))
            .filter(|c| self.is_available(*c))
            .collect()
    }

    /// The AZs (within `region`) where `ty` is available.
    pub fn azs_offering(&self, ty: TypeId, region: Region) -> Vec<Az> {
        region
            .azs()
            .filter(|&az| self.is_available(Combo::new(az, ty)))
            .collect()
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

/// SplitMix64 finalizer, used as a stand-alone integer mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_53_types_and_452_combos() {
        let c = Catalog::standard();
        assert_eq!(c.len(), 53, "paper: 53 instance types");
        assert_eq!(c.combos().len(), 452, "paper: 452 AZ x type combos");
    }

    #[test]
    fn paper_cited_prices_are_present() {
        let c = Catalog::standard();
        // §4.1.2: cg1.4xlarge had On-demand $2.1 in us-east-1.
        let cg1 = c.type_id("cg1.4xlarge").unwrap();
        assert_eq!(c.od_price(cg1, Region::UsEast1), Price::from_dollars(2.1));
        // §4.4: m1.large On-demand in us-west-2 was $0.175.
        let m1l = c.type_id("m1.large").unwrap();
        assert_eq!(c.od_price(m1l, Region::UsWest2), Price::from_dollars(0.175));
    }

    #[test]
    fn regional_multiplier_applies() {
        let c = Catalog::standard();
        let m1l = c.type_id("m1.large").unwrap();
        let east = c.od_price(m1l, Region::UsEast1);
        let west1 = c.od_price(m1l, Region::UsWest1);
        assert!(west1 > east, "us-west-1 is priced above us-east-1");
    }

    #[test]
    fn unknown_type_name_is_none() {
        assert!(Catalog::standard().type_id("z9.mega").is_none());
    }

    #[test]
    fn availability_is_deterministic() {
        let a = Catalog::new();
        let b = Catalog::new();
        assert_eq!(a.combos(), b.combos());
    }

    #[test]
    fn every_type_is_available_somewhere() {
        let c = Catalog::standard();
        for ty in c.type_ids() {
            let available_anywhere = Az::all().any(|az| c.is_available(Combo::new(az, ty)));
            assert!(available_anywhere, "{} offered nowhere", c.spec(ty).name);
        }
    }

    #[test]
    fn every_az_offers_most_types() {
        let c = Catalog::standard();
        for az in Az::all() {
            let n = c.combos_in_az(az).len();
            assert!(n >= 40, "{} offers only {n} types", az.name());
        }
    }

    #[test]
    fn azs_offering_is_consistent_with_availability() {
        let c = Catalog::standard();
        let ty = c.type_id("c4.large").unwrap();
        for region in Region::ALL {
            for az in c.azs_offering(ty, region) {
                assert!(c.is_available(Combo::new(az, ty)));
                assert_eq!(az.region(), region);
            }
        }
    }

    #[test]
    fn specs_are_sane() {
        let c = Catalog::standard();
        for ty in c.type_ids() {
            let s = c.spec(ty);
            assert!(s.vcpus >= 1);
            assert!(s.mem_gb > 0.0);
            assert!(s.od_us_east > Price::ZERO);
            assert!(s.name.contains('.'));
        }
    }
}
