//! Instance lifecycle state machine.
//!
//! Tracks one spot instance from launch to termination, enforcing legal
//! transitions (running -> terminated exactly once, timestamps monotone).

use crate::billing::EndReason;
use crate::price::Price;
use crate::types::Combo;

/// Identifier of a launched instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u64);

/// Why a terminated instance stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationReason {
    /// The user shut it down.
    User,
    /// The market price reached the instance's maximum bid.
    Price,
}

impl TerminationReason {
    /// The corresponding billing end reason.
    pub fn billing(self) -> EndReason {
        match self {
            TerminationReason::User => EndReason::User,
            TerminationReason::Price => EndReason::Price,
        }
    }
}

/// Current state of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// Accepted and running.
    Running,
    /// Stopped at `at` for `reason`.
    Terminated {
        /// Termination timestamp.
        at: u64,
        /// Cause.
        reason: TerminationReason,
    },
}

/// A launched spot instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Identifier.
    pub id: InstanceId,
    /// The market it runs in.
    pub combo: Combo,
    /// The maximum bid it was requested with.
    pub bid: Price,
    /// Launch timestamp.
    pub launched_at: u64,
    state: InstanceState,
}

impl Instance {
    /// Creates a freshly launched (running) instance.
    pub fn launch(id: InstanceId, combo: Combo, bid: Price, at: u64) -> Self {
        Self {
            id,
            combo,
            bid,
            launched_at: at,
            state: InstanceState::Running,
        }
    }

    /// Current state.
    pub fn state(&self) -> InstanceState {
        self.state
    }

    /// Whether the instance is still running.
    pub fn is_running(&self) -> bool {
        self.state == InstanceState::Running
    }

    /// Seconds of runtime up to `now` (or up to termination).
    pub fn runtime(&self, now: u64) -> u64 {
        let end = match self.state {
            InstanceState::Running => now,
            InstanceState::Terminated { at, .. } => at.min(now),
        };
        end.saturating_sub(self.launched_at)
    }

    /// Terminates the instance.
    ///
    /// # Panics
    /// Panics if it is already terminated or `at` precedes the launch.
    pub fn terminate(&mut self, at: u64, reason: TerminationReason) {
        assert!(
            self.is_running(),
            "instance {:?} already terminated",
            self.id
        );
        assert!(
            at >= self.launched_at,
            "termination at {at} precedes launch at {}",
            self.launched_at
        );
        self.state = InstanceState::Terminated { at, reason };
    }

    /// Termination reason, if terminated.
    pub fn termination_reason(&self) -> Option<TerminationReason> {
        match self.state {
            InstanceState::Running => None,
            InstanceState::Terminated { reason, .. } => Some(reason),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Az, Region, TypeId};

    fn inst() -> Instance {
        Instance::launch(
            InstanceId(1),
            Combo::new(Az::new(Region::UsEast1, 0), TypeId(0)),
            Price::from_dollars(0.1),
            1000,
        )
    }

    #[test]
    fn fresh_instance_is_running() {
        let i = inst();
        assert!(i.is_running());
        assert_eq!(i.state(), InstanceState::Running);
        assert_eq!(i.termination_reason(), None);
    }

    #[test]
    fn runtime_accrues_until_termination() {
        let mut i = inst();
        assert_eq!(i.runtime(1000), 0);
        assert_eq!(i.runtime(4600), 3600);
        i.terminate(8200, TerminationReason::Price);
        assert_eq!(i.runtime(10_000), 7200, "runtime freezes at termination");
        assert_eq!(i.runtime(5000), 4000, "clamped to now if earlier");
    }

    #[test]
    fn runtime_before_launch_is_zero() {
        let i = inst();
        assert_eq!(i.runtime(500), 0);
    }

    #[test]
    fn terminate_records_reason() {
        let mut i = inst();
        i.terminate(2000, TerminationReason::User);
        assert_eq!(i.termination_reason(), Some(TerminationReason::User));
        assert!(!i.is_running());
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_termination_panics() {
        let mut i = inst();
        i.terminate(2000, TerminationReason::User);
        i.terminate(3000, TerminationReason::Price);
    }

    #[test]
    #[should_panic(expected = "precedes launch")]
    fn termination_before_launch_panics() {
        let mut i = inst();
        i.terminate(500, TerminationReason::User);
    }

    #[test]
    fn billing_reason_mapping() {
        assert_eq!(
            TerminationReason::User.billing(),
            crate::billing::EndReason::User
        );
        assert_eq!(
            TerminationReason::Price.billing(),
            crate::billing::EndReason::Price
        );
    }
}
