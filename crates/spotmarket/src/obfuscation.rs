//! AZ-name obfuscation and deobfuscation.
//!
//! Amazon "prevents herding behavior in AZ selection by remapping AZ names
//! on a user-by-user basis. ... It is possible to compare market price
//! histories from different users to determine a globally consistent AZ
//! naming scheme" (paper §2.2). The DrAFTS *service* needs that
//! deobfuscation; this module provides both directions:
//!
//! * [`AzMapping`] — a deterministic per-account permutation of the zone
//!   indices within each region,
//! * [`recover_mapping`] — reconstructs the permutation by correlating an
//!   account's observed price series against canonical ones.

use crate::history::PriceHistory;
use crate::types::{Az, Region};
use simrng::{Rng, SeedableFrom, Xoshiro256pp};
use std::collections::HashMap;

/// A per-account permutation of AZ indices within each region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AzMapping {
    /// `perm[region_idx][account_visible_index] = canonical_index`.
    perms: Vec<Vec<u8>>,
}

impl AzMapping {
    /// The identity mapping (what the provider's own view uses).
    pub fn identity() -> Self {
        Self {
            perms: Region::ALL
                .iter()
                .map(|r| (0..r.az_count()).collect())
                .collect(),
        }
    }

    /// Derives the deterministic mapping for an account.
    pub fn for_account(account_seed: u64) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(account_seed ^ 0xA20BFu64);
        let perms = Region::ALL
            .iter()
            .map(|r| {
                let mut idx: Vec<u8> = (0..r.az_count()).collect();
                rng.shuffle(&mut idx);
                idx
            })
            .collect();
        Self { perms }
    }

    /// Builds a mapping from explicit per-region permutations.
    ///
    /// # Panics
    /// Panics unless each row is a permutation of the region's AZ indices.
    pub fn from_perms(perms: Vec<Vec<u8>>) -> Self {
        assert_eq!(perms.len(), Region::ALL.len());
        for (r, perm) in Region::ALL.iter().zip(&perms) {
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                (0..r.az_count()).collect::<Vec<_>>(),
                "row for {} is not a permutation",
                r.name()
            );
        }
        Self { perms }
    }

    fn region_idx(region: Region) -> usize {
        Region::ALL.iter().position(|&r| r == region).expect("all regions listed")
    }

    /// Maps an account-visible AZ to the canonical AZ.
    pub fn to_canonical(&self, visible: Az) -> Az {
        let perm = &self.perms[Self::region_idx(visible.region())];
        Az::new(visible.region(), perm[visible.index() as usize])
    }

    /// Maps a canonical AZ to what this account sees.
    pub fn to_visible(&self, canonical: Az) -> Az {
        let perm = &self.perms[Self::region_idx(canonical.region())];
        let vis = perm
            .iter()
            .position(|&c| c == canonical.index())
            .expect("permutation is total");
        Az::new(canonical.region(), vis as u8)
    }

    /// Whether this is the identity mapping.
    pub fn is_identity(&self) -> bool {
        *self == Self::identity()
    }
}

/// Recovers an account's AZ mapping by matching its observed per-AZ price
/// series for one instance type against the canonical series.
///
/// Histories of the same underlying AZ are identical time series, so
/// matching minimizes the number of disagreeing samples; with distinct
/// markets the correct assignment disagrees nowhere. Returns `None` when a
/// visible series matches no canonical series exactly (e.g. truncated or
/// tampered data).
pub fn recover_mapping(
    observed: &HashMap<Az, PriceHistory>,
    canonical: &HashMap<Az, PriceHistory>,
) -> Option<AzMapping> {
    let mut perms: Vec<Vec<u8>> = Vec::with_capacity(Region::ALL.len());
    for region in Region::ALL {
        let mut perm = vec![u8::MAX; region.az_count() as usize];
        let mut taken = vec![false; region.az_count() as usize];
        for visible in region.azs() {
            let obs = observed.get(&visible)?;
            let mut matched = None;
            for canon in region.azs() {
                if taken[canon.index() as usize] {
                    continue;
                }
                let c = canonical.get(&canon)?;
                if series_match(obs, c) {
                    matched = Some(canon.index());
                    break;
                }
            }
            let m = matched?;
            perm[visible.index() as usize] = m;
            taken[m as usize] = true;
        }
        perms.push(perm);
    }
    Some(AzMapping::from_perms(perms))
}

/// Two histories match when they agree on every sampled point.
fn series_match(a: &PriceHistory, b: &PriceHistory) -> bool {
    if a.len() != b.len() {
        return false;
    }
    if a.is_empty() {
        return true;
    }
    // Sample up to 64 evenly spaced points; identical series agree on all.
    let n = a.len();
    let step = (n / 64).max(1);
    (0..n)
        .step_by(step)
        .all(|i| a.price(i) == b.price(i) && a.time(i) == b.time(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::tracegen::{self, TraceConfig};
    use crate::types::Combo;

    #[test]
    fn identity_round_trips() {
        let m = AzMapping::identity();
        assert!(m.is_identity());
        for az in Az::all() {
            assert_eq!(m.to_canonical(az), az);
            assert_eq!(m.to_visible(az), az);
        }
    }

    #[test]
    fn account_mapping_is_deterministic() {
        assert_eq!(AzMapping::for_account(5), AzMapping::for_account(5));
    }

    #[test]
    fn mapping_is_a_bijection() {
        let m = AzMapping::for_account(123);
        for az in Az::all() {
            assert_eq!(m.to_visible(m.to_canonical(az)), az);
            assert_eq!(m.to_canonical(m.to_visible(az)), az);
            assert_eq!(m.to_canonical(az).region(), az.region());
        }
    }

    #[test]
    fn some_account_sees_a_shuffled_view() {
        let shuffled = (0..50).any(|s| !AzMapping::for_account(s).is_identity());
        assert!(shuffled);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn from_perms_validates() {
        AzMapping::from_perms(vec![vec![0, 0, 1, 2], vec![0, 1], vec![0, 1, 2]]);
    }

    #[test]
    fn recovers_a_random_mapping_from_price_histories() {
        let cat = Catalog::standard();
        let ty = cat.type_id("c3.large").unwrap();
        let cfg = TraceConfig::days(10, 4242);
        let canonical: HashMap<Az, PriceHistory> = Az::all()
            .map(|az| (az, tracegen::generate(Combo::new(az, ty), cat, &cfg)))
            .collect();

        let mapping = AzMapping::for_account(777);
        // The account observes the canonical series under shuffled names.
        let observed: HashMap<Az, PriceHistory> = Az::all()
            .map(|visible| {
                let canonical_az = mapping.to_canonical(visible);
                (visible, canonical[&canonical_az].clone())
            })
            .collect();

        let recovered = recover_mapping(&observed, &canonical).expect("recoverable");
        assert_eq!(recovered, mapping);
    }

    #[test]
    fn recovery_fails_on_foreign_series() {
        let cat = Catalog::standard();
        let ty = cat.type_id("c3.large").unwrap();
        let canonical: HashMap<Az, PriceHistory> = Az::all()
            .map(|az| {
                (
                    az,
                    tracegen::generate(Combo::new(az, ty), cat, &TraceConfig::days(10, 1)),
                )
            })
            .collect();
        // Observations from a different seed match nothing.
        let observed: HashMap<Az, PriceHistory> = Az::all()
            .map(|az| {
                (
                    az,
                    tracegen::generate(Combo::new(az, ty), cat, &TraceConfig::days(10, 2)),
                )
            })
            .collect();
        assert!(recover_mapping(&observed, &canonical).is_none());
    }
}
