//! Identifiers for the market taxonomy: Regions, Availability Zones,
//! instance types, and the `(AZ, type)` combination users must choose when
//! bidding (paper §2, request tuple (1)).

use std::fmt;

/// An EC2 Region — an independent instantiation of the service.
///
/// The paper's study covers exactly these three (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Region {
    /// us-east-1 (N. Virginia); 4 AZs visible to the study account.
    UsEast1,
    /// us-west-1 (N. California); 2 AZs.
    UsWest1,
    /// us-west-2 (Oregon); 3 AZs.
    UsWest2,
}

impl Region {
    /// All regions in the study.
    pub const ALL: [Region; 3] = [Region::UsEast1, Region::UsWest1, Region::UsWest2];

    /// Canonical AWS name.
    pub fn name(self) -> &'static str {
        match self {
            Region::UsEast1 => "us-east-1",
            Region::UsWest1 => "us-west-1",
            Region::UsWest2 => "us-west-2",
        }
    }

    /// Number of AZs visible to the experimental account (paper §4.1
    /// footnote 5: 4 + 2 + 3 = 9 total).
    pub fn az_count(self) -> u8 {
        match self {
            Region::UsEast1 => 4,
            Region::UsWest1 => 2,
            Region::UsWest2 => 3,
        }
    }

    /// The AZs of this region.
    pub fn azs(self) -> impl Iterator<Item = Az> {
        (0..self.az_count()).map(move |i| Az::new(self, i))
    }

    /// Letter offset of this region's first visible AZ. The study account
    /// saw us-east-1's zones as b..e (paper Table 4 rows), the others as
    /// a-based.
    pub fn first_letter_offset(self) -> u8 {
        match self {
            Region::UsEast1 => 1,
            Region::UsWest1 | Region::UsWest2 => 0,
        }
    }

    /// On-demand price multiplier relative to us-east-1 (regions price
    /// independently; us-west-1 has historically been the most expensive).
    pub fn od_multiplier(self) -> f64 {
        match self {
            Region::UsEast1 => 1.00,
            Region::UsWest1 => 1.17,
            Region::UsWest2 => 1.00,
        }
    }

    /// Parses a canonical region name.
    pub fn parse(name: &str) -> Option<Region> {
        Region::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An Availability Zone: a region plus a zero-based zone index.
///
/// Index 0 is suffix 'a', 1 is 'b', and so on — these are *canonical*
/// (deobfuscated) names; per-account remapping lives in
/// [`crate::obfuscation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Az {
    region: Region,
    index: u8,
}

impl Az {
    /// Creates an AZ.
    ///
    /// # Panics
    /// Panics if `index` exceeds the region's AZ count.
    pub fn new(region: Region, index: u8) -> Self {
        assert!(
            index < region.az_count(),
            "{} has only {} AZs, got index {index}",
            region.name(),
            region.az_count()
        );
        Self { region, index }
    }

    /// The owning region.
    pub fn region(self) -> Region {
        self.region
    }

    /// Zero-based zone index within the region.
    pub fn index(self) -> u8 {
        self.index
    }

    /// The zone letter suffix (region-dependent start; see
    /// [`Region::first_letter_offset`]).
    pub fn letter(self) -> char {
        (b'a' + self.region.first_letter_offset() + self.index) as char
    }

    /// Canonical AWS-style name, e.g. `us-east-1c`.
    pub fn name(self) -> String {
        format!("{}{}", self.region.name(), self.letter())
    }

    /// All nine study AZs, in region order.
    pub fn all() -> impl Iterator<Item = Az> {
        Region::ALL.into_iter().flat_map(|r| r.azs())
    }

    /// A stable dense index over all study AZs (0..9), useful as an array
    /// key.
    pub fn dense_index(self) -> usize {
        let offset: usize = Region::ALL
            .iter()
            .take_while(|&&r| r != self.region)
            .map(|r| r.az_count() as usize)
            .sum();
        offset + self.index as usize
    }

    /// Parses a canonical AZ name, e.g. `us-west-2c`.
    pub fn parse(name: &str) -> Option<Az> {
        let (region_part, letter) = name.split_at(name.len().checked_sub(1)?);
        let region = Region::parse(region_part)?;
        let letter = letter.chars().next()?;
        let index = (letter as u8).checked_sub(b'a' + region.first_letter_offset())?;
        (index < region.az_count()).then(|| Az::new(region, index))
    }
}

impl fmt::Display for Az {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.region.name(), self.letter())
    }
}

/// Index of an instance type in the [`crate::catalog::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub u16);

impl TypeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidable market: one instance type in one AZ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Combo {
    /// The Availability Zone.
    pub az: Az,
    /// The instance type.
    pub ty: TypeId,
}

impl Combo {
    /// Creates a combo.
    pub fn new(az: Az, ty: TypeId) -> Self {
        Self { az, ty }
    }

    /// A stable 64-bit key (for stream derivation and hashing).
    pub fn key(self) -> u64 {
        (self.az.dense_index() as u64) << 32 | self.ty.0 as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_names_and_counts() {
        assert_eq!(Region::UsEast1.name(), "us-east-1");
        assert_eq!(Region::UsEast1.az_count(), 4);
        assert_eq!(Region::UsWest1.az_count(), 2);
        assert_eq!(Region::UsWest2.az_count(), 3);
        let total: u8 = Region::ALL.iter().map(|r| r.az_count()).sum();
        assert_eq!(total, 9, "paper reports 9 AZs across the three regions");
    }

    #[test]
    fn az_names() {
        let az = Az::new(Region::UsEast1, 2);
        assert_eq!(az.name(), "us-east-1d");
        assert_eq!(az.letter(), 'd');
        assert_eq!(Az::new(Region::UsEast1, 0).name(), "us-east-1b");
        assert_eq!(Az::new(Region::UsWest2, 0).name(), "us-west-2a");
    }

    #[test]
    #[should_panic(expected = "only 2 AZs")]
    fn az_index_bounds_checked() {
        Az::new(Region::UsWest1, 2);
    }

    #[test]
    fn dense_index_is_a_bijection_over_nine() {
        let idxs: Vec<usize> = Az::all().map(|a| a.dense_index()).collect();
        assert_eq!(idxs, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn az_parse_round_trips() {
        for az in Az::all() {
            assert_eq!(Az::parse(&az.name()), Some(az));
        }
        assert_eq!(
            Az::parse("us-east-1a"),
            None,
            "study account saw b..e in us-east-1 (paper Table 4)"
        );
        assert!(Az::parse("us-east-1e").is_some());
        assert_eq!(Az::parse("us-west-1c"), None);
        assert_eq!(Az::parse("eu-west-1a"), None);
        assert_eq!(Az::parse(""), None);
    }

    #[test]
    fn region_parse() {
        assert_eq!(Region::parse("us-west-2"), Some(Region::UsWest2));
        assert_eq!(Region::parse("us-east-2"), None);
    }

    #[test]
    fn combo_keys_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for az in Az::all() {
            for ty in 0..60u16 {
                assert!(seen.insert(Combo::new(az, TypeId(ty)).key()));
            }
        }
    }
}
