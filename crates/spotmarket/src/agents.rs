//! Stochastic market participants driving the clearing engine.
//!
//! The paper observes that spot prices are not a pure demand signal — the
//! provider injects hidden supply-side externalities (§5, citing Ben-Yehuda
//! et al.). [`AgentMarket`] reproduces that structure endogenously: a
//! Poisson stream of bidders with lognormal bids and exponential lifetimes
//! competes for a supply that follows its own random walk; each 5-minute
//! tick the market clears and announces a price. The resulting series shows
//! the plateaus, jumps and spikes the direct trace generator
//! ([`crate::tracegen`]) models statistically — the integration tests
//! verify that DrAFTS behaves equivalently on both sources.

use crate::market::{Market, RequestId};
use crate::price::Price;
use crate::UPDATE_PERIOD;
use simrng::dist::{Exponential, LogNormal, Poisson};
use simrng::{Rng, Xoshiro256pp};
use tsforecast::TimeSeries;

/// Demand/supply process parameters.
#[derive(Debug, Clone, Copy)]
pub struct AgentConfig {
    /// Mean new requests per tick.
    pub arrival_rate: f64,
    /// Log-mean of bids as a fraction of the On-demand price.
    pub bid_ln_mu: f64,
    /// Log-sd of bids.
    pub bid_ln_sd: f64,
    /// Mean units per request (1 + Poisson).
    pub qty_mean: f64,
    /// Mean request lifetime in ticks (exponential).
    pub mean_lifetime: f64,
    /// Initial supply in units.
    pub supply: u64,
    /// Per-tick probability of a supply step.
    pub supply_step_rate: f64,
    /// Maximum relative size of one supply step.
    pub supply_step_frac: f64,
    /// Reserve price as a fraction of On-demand.
    pub reserve_frac: f64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        Self {
            arrival_rate: 3.0,
            bid_ln_mu: -1.2, // median bid ~0.30 x On-demand
            bid_ln_sd: 0.8,
            qty_mean: 1.5,
            mean_lifetime: 24.0, // ~2 hours
            supply: 120,
            supply_step_rate: 0.01,
            supply_step_frac: 0.35,
            reserve_frac: 0.08,
        }
    }
}

/// A market animated by stochastic participants.
#[derive(Debug)]
pub struct AgentMarket {
    market: Market,
    cfg: AgentConfig,
    od: Price,
    rng: Xoshiro256pp,
    /// Live requests with their expiry tick.
    live: Vec<(RequestId, u64)>,
    tick: u64,
    arrivals: Poisson,
    bid_dist: LogNormal,
    qty_dist: Poisson,
    lifetime: Exponential,
}

impl AgentMarket {
    /// Creates an agent-driven market around an On-demand anchor price.
    ///
    /// # Panics
    /// Panics on non-positive rates or a zero On-demand price.
    pub fn new(od: Price, cfg: AgentConfig, rng: Xoshiro256pp) -> Self {
        assert!(od > Price::ZERO, "on-demand anchor must be positive");
        let reserve = od.scale(cfg.reserve_frac).max(Price::TICK);
        Self {
            market: Market::new(reserve, cfg.supply),
            od,
            rng,
            live: Vec::new(),
            tick: 0,
            arrivals: Poisson::new(cfg.arrival_rate).expect("arrival_rate validated"),
            bid_dist: LogNormal::new(cfg.bid_ln_mu, cfg.bid_ln_sd).expect("bid params"),
            qty_dist: Poisson::new(cfg.qty_mean.max(1.0) - 1.0).expect("qty params"),
            lifetime: Exponential::new(1.0 / cfg.mean_lifetime.max(1e-9)).expect("lifetime"),
            cfg,
        }
    }

    /// Access to the underlying clearing engine.
    pub fn market(&self) -> &Market {
        &self.market
    }

    /// Advances one tick: expiries, arrivals, supply walk, clearing.
    /// Returns the announced price.
    pub fn step(&mut self) -> Price {
        self.tick += 1;
        let t = self.tick;

        // User departures.
        let mut expired = Vec::new();
        self.live.retain(|&(id, expiry)| {
            if expiry <= t {
                expired.push(id);
                false
            } else {
                true
            }
        });
        for id in expired {
            self.market.cancel(id);
        }

        // Arrivals.
        let n = self.arrivals.sample(&mut self.rng);
        for _ in 0..n {
            let frac = self.bid_dist.sample(&mut self.rng).min(12.0);
            let bid = self.od.scale(frac).max(Price::TICK);
            let qty = 1 + self.qty_dist.sample(&mut self.rng);
            let life = self.lifetime.sample(&mut self.rng).ceil().max(1.0) as u64;
            let id = self.market.submit(bid, qty);
            self.live.push((id, t + life));
        }

        // Supply random walk (the provider's hidden externality).
        if self.rng.next_bool(self.cfg.supply_step_rate) {
            let s = self.market.supply() as f64;
            let delta = (self.rng.next_f64() * 2.0 - 1.0) * self.cfg.supply_step_frac * s;
            let new_supply = (s + delta).round().max(1.0) as u64;
            self.market.set_supply(new_supply);
        }

        let clearing = self.market.clear();
        // Outbid requests are gone from the market; drop them locally too.
        let outbid: std::collections::HashSet<RequestId> =
            clearing.outbid.iter().copied().collect();
        self.live.retain(|(id, _)| !outbid.contains(id));
        clearing.price
    }

    /// Runs `ticks` steps and returns the price series on the 5-minute
    /// grid starting at `start`.
    pub fn run(&mut self, start: u64, ticks: u64) -> TimeSeries {
        let mut series = TimeSeries::with_capacity(ticks as usize);
        let mut t = start;
        for _ in 0..ticks {
            let p = self.step();
            series.push(t, p.ticks());
            t += UPDATE_PERIOD;
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::SeedableFrom;

    fn od() -> Price {
        Price::from_dollars(0.105) // c4.large anchor
    }

    fn rng(seed: u64) -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(seed)
    }

    #[test]
    fn produces_a_nontrivial_price_series() {
        let mut m = AgentMarket::new(od(), AgentConfig::default(), rng(1));
        let series = m.run(0, 2000);
        assert_eq!(series.len(), 2000);
        let distinct: std::collections::HashSet<u64> =
            series.values().iter().copied().collect();
        assert!(distinct.len() > 10, "price must actually move");
        // Prices bounded below by the reserve.
        let reserve = od().scale(AgentConfig::default().reserve_frac).ticks();
        assert!(series.values().iter().all(|&v| v >= reserve));
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a = AgentMarket::new(od(), AgentConfig::default(), rng(7)).run(0, 500);
        let b = AgentMarket::new(od(), AgentConfig::default(), rng(7)).run(0, 500);
        assert_eq!(a, b);
        let c = AgentMarket::new(od(), AgentConfig::default(), rng(8)).run(0, 500);
        assert_ne!(a, c);
    }

    #[test]
    fn supply_cut_raises_prices() {
        let cfg = AgentConfig {
            supply_step_rate: 0.0, // we control supply manually
            ..AgentConfig::default()
        };
        let mut m = AgentMarket::new(od(), cfg, rng(3));
        // Warm up to a steady book.
        for _ in 0..500 {
            m.step();
        }
        let before: f64 = (0..200).map(|_| m.step().ticks() as f64).sum::<f64>() / 200.0;
        // Cut supply to a fifth and let the book adjust.
        let s = m.market().supply();
        m.market.set_supply((s / 5).max(1));
        for _ in 0..100 {
            m.step();
        }
        let after: f64 = (0..200).map(|_| m.step().ticks() as f64).sum::<f64>() / 200.0;
        assert!(
            after > before * 1.2,
            "mean price should rise on a supply cut: {before} -> {after}"
        );
    }

    #[test]
    fn book_does_not_grow_without_bound() {
        let mut m = AgentMarket::new(od(), AgentConfig::default(), rng(5));
        for _ in 0..3000 {
            m.step();
        }
        // Expected book size ~ arrival_rate * mean_lifetime (survivors of
        // clearing); assert a generous multiple.
        assert!(
            m.market().live_requests() < 2000,
            "book size {} suggests an expiry leak",
            m.market().live_requests()
        );
    }

    #[test]
    fn qbets_consumes_agent_prices_end_to_end() {
        use tsforecast::{BoundEstimator, Qbets, QbetsConfig};
        let mut m = AgentMarket::new(od(), AgentConfig::default(), rng(11));
        let series = m.run(0, 3000);
        let mut q = Qbets::new(QbetsConfig::default());
        for &v in series.values() {
            q.observe(v);
        }
        let bound = q.upper_bound_or_max(0.975).unwrap();
        // The bound must sit within the observed envelope.
        let max = *series.values().iter().max().unwrap();
        assert!(bound <= max);
        assert!(bound as f64 >= od().scale(0.05).ticks() as f64);
    }
}
