//! EC2-style spot-market substrate.
//!
//! The SC'17 DrAFTS paper evaluates against 18 months of real Amazon spot
//! price histories that are no longer available (and whose market mechanism
//! Amazon retired in late 2017). This crate rebuilds the substrate the paper
//! sits on:
//!
//! * [`price`] — exact fixed-point prices in ticks of $0.0001 (the Spot
//!   tier's minimum increment, paper §3.2),
//! * [`types`] / [`catalog`] — Regions, Availability Zones and the 53-type
//!   instance catalog with On-demand prices (452 valid AZ x type combos, as
//!   backtested in §4.1),
//! * [`market`] — the published market-clearing mechanism (§2.1): hidden
//!   supply, descending-bid allocation, price = lowest accepted bid,
//! * [`agents`] — stochastic market participants that drive the clearing
//!   engine to produce *endogenous* price series,
//! * [`archetype`] / [`tracegen`] — a calibrated regime-switching generator
//!   that reproduces the qualitative price-series classes the paper reports
//!   (calm, diurnal, choppy, volatile, spiky, pinned-above-On-demand),
//! * [`history`] — price-history queries, including the segment-tree
//!   "first time price >= bid" query the DrAFTS duration step needs,
//! * [`billing`] — hourly billing with round-up semantics (§2.1),
//! * [`lifecycle`] / [`simulator`] — instance state machine and the
//!   post-facto launch simulator used by the §4.2-style experiments,
//! * [`faults`] — seeded fault injection: perturbed price feeds behind the
//!   [`faults::FeedSource`] trait (outages, lag, loss, duplication,
//!   corruption) and launch-API failures for degradation testing,
//! * [`obfuscation`] — per-account AZ-name remapping and its
//!   correlation-based deobfuscation (§2.2),
//! * [`reflexivity`] — the paper's §6 future-work question: how DrAFTS
//!   adoption feeds back into the market it predicts.

pub mod agents;
pub mod archetype;
pub mod billing;
pub mod catalog;
pub mod faults;
pub mod history;
pub mod lifecycle;
pub mod market;
pub mod obfuscation;
pub mod price;
pub mod reflexivity;
pub mod simulator;
pub mod tracegen;
pub mod types;

pub use catalog::Catalog;
pub use faults::{
    CleanFeed, FaultCounters, FaultPlan, FaultyFeed, FeedError, FeedSource, LaunchFaults,
};
pub use history::PriceHistory;
pub use price::Price;
pub use types::{Az, Combo, Region, TypeId};

/// Seconds per minute.
pub const MINUTE: u64 = 60;
/// Seconds per hour.
pub const HOUR: u64 = 3600;
/// Seconds per day.
pub const DAY: u64 = 86_400;
/// The market price update periodicity the paper observes (§2.1).
pub const UPDATE_PERIOD: u64 = 5 * MINUTE;
