//! AZ deobfuscation: recover an account's shuffled AZ naming from price
//! histories (paper §2.2 — the DrAFTS service needs a globally consistent
//! AZ naming scheme).

use drafts::market::obfuscation::{recover_mapping, AzMapping};
use drafts::market::{tracegen, Az, Catalog, Combo, PriceHistory};
use std::collections::HashMap;

fn main() {
    let catalog = Catalog::standard();
    let ty = catalog.type_id("c3.large").expect("known type");
    let cfg = tracegen::TraceConfig::days(10, 4242);

    // The provider's canonical view.
    let canonical: HashMap<Az, PriceHistory> = Az::all()
        .map(|az| (az, tracegen::generate(Combo::new(az, ty), catalog, &cfg)))
        .collect();

    // An account sees the same markets under a shuffled naming.
    let account_seed = 20171112;
    let mapping = AzMapping::for_account(account_seed);
    let observed: HashMap<Az, PriceHistory> = Az::all()
        .map(|visible| (visible, canonical[&mapping.to_canonical(visible)].clone()))
        .collect();

    println!("account {account_seed} sees:");
    for az in Az::all() {
        println!("  {:<13} -> really {}", az.name(), mapping.to_canonical(az).name());
    }

    let recovered = recover_mapping(&observed, &canonical).expect("identical series match");
    assert_eq!(recovered, mapping);
    println!("\nrecovered the full mapping by correlating price histories ✓");
}
