//! Quickstart: generate a market history, compute a DrAFTS durability
//! quote, and check it against the realized prices.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use drafts::core::predictor::{DraftsConfig, DraftsPredictor};
use drafts::core::BidDurationGraph;
use drafts::market::{tracegen, Az, Catalog, Combo, DAY, HOUR};

fn main() {
    let catalog = Catalog::standard();
    let combo = Combo::new(
        Az::parse("us-west-2a").expect("known AZ"),
        catalog.type_id("c4.large").expect("known type"),
    );
    let od = catalog.od_price(combo.ty, combo.az.region());
    println!(
        "market: {} in {} (On-demand {})",
        catalog.spec(combo.ty).name,
        combo.az.name(),
        od
    );

    // 30 days of 5-minute spot prices.
    let history = tracegen::generate(combo, catalog, &tracegen::TraceConfig::days(30, 7));
    println!(
        "history: {} updates, {} .. {}",
        history.len(),
        history.min_price().expect("non-empty"),
        history.max_price().expect("non-empty"),
    );

    // Predict at day 28 so there is future left to verify against.
    let now = 28 * DAY;
    let upto = history.series().index_at(now).expect("inside history");
    let predictor = DraftsPredictor::new(&history, DraftsConfig::default());

    for hours in [1u64, 6, 12] {
        let quote = predictor.bid_quote(upto, 0.95, hours * HOUR);
        let survived = history
            .survival(now, quote.bid)
            .survives_for(now, hours * HOUR);
        println!(
            "p=0.95, {hours:>2}h hold: bid {} ({}; post-facto: {})",
            quote.bid,
            match quote.durability_secs {
                Some(d) => format!("guaranteed {}h{:02}m", d / 3600, (d % 3600) / 60),
                None => "no guarantee available".into(),
            },
            if survived { "survived" } else { "terminated" },
        );
    }

    // The service-style bid-duration graph.
    if let Some(graph) = BidDurationGraph::compute(&predictor, upto, 0.95) {
        println!("\nbid-duration graph (p = 0.95), first/mid/last points:");
        let pts = graph.points();
        for &i in &[0, pts.len() / 2, pts.len() - 1] {
            let p = pts[i];
            println!(
                "  bid {} -> {}h{:02}m",
                p.bid,
                p.durability_secs / 3600,
                (p.durability_secs % 3600) / 60
            );
        }
    }
}
