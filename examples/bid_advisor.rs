//! Bid advisor: the §4.4 cost-optimization strategy as a tool.
//!
//! For an instance type and region, compare the DrAFTS-guaranteed bid in
//! every AZ against the On-demand price and recommend where (and whether)
//! to use the Spot tier.
//!
//! ```text
//! cargo run --release --example bid_advisor -- c3.xlarge us-west-2 6
//! ```
//! (type, region, hold duration in hours; all optional)

use drafts::core::optimizer::{self, Choice};
use drafts::core::predictor::{DraftsConfig, DraftsPredictor};
use drafts::market::{tracegen, Catalog, Combo, Region, DAY, HOUR};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let type_name = args.get(1).map(String::as_str).unwrap_or("c3.xlarge");
    let region = args
        .get(2)
        .and_then(|s| Region::parse(s))
        .unwrap_or(Region::UsWest2);
    let hours: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(6);

    let catalog = Catalog::standard();
    let Some(ty) = catalog.type_id(type_name) else {
        eprintln!("unknown instance type '{type_name}'");
        std::process::exit(2);
    };
    let od = catalog.od_price(ty, region);
    println!(
        "advising on {type_name} in {region} for a {hours}-hour hold (On-demand {od}/h)\n"
    );

    let cfg = DraftsConfig::default();
    let now = 28 * DAY;
    for az in catalog.azs_offering(ty, region) {
        let combo = Combo::new(az, ty);
        let history = tracegen::generate(combo, catalog, &tracegen::TraceConfig::days(30, 7));
        let upto = history.series().index_at(now).expect("inside history");
        let predictor = DraftsPredictor::new(&history, cfg);
        let quote = predictor.bid_quote(upto, 0.99, hours * HOUR);
        let guaranteed = quote.guarantees(hours * HOUR);
        let choice = optimizer::choose(guaranteed.then_some(quote.bid), od);
        println!(
            "  {:<12} market {} | DrAFTS bid {} ({}) -> {}",
            az.name(),
            history.price_at(now).expect("inside history"),
            quote.bid,
            if guaranteed { "guaranteed" } else { "no guarantee" },
            match choice {
                Choice::Spot { bid } => format!(
                    "SPOT at max {} (worst case {} for {hours}h)",
                    bid,
                    bid.times(hours)
                ),
                Choice::OnDemand => format!("ON-DEMAND ({} for {hours}h)", od.times(hours)),
            }
        );
    }
}
