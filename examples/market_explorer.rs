//! Market explorer: runs the *mechanistic* market — the published clearing
//! mechanism driven by stochastic participants (paper §2.1) — rather than
//! the statistical trace generator, and shows the emergent price dynamics
//! plus how DrAFTS reads them.

use drafts::forecast::{BoundEstimator, Qbets, QbetsConfig};
use drafts::market::agents::{AgentConfig, AgentMarket};
use drafts::market::Price;
use drafts::rng::{SeedableFrom, Xoshiro256pp};

fn main() {
    let od = Price::from_dollars(0.105); // c4.large-era anchor
    let mut market = AgentMarket::new(od, AgentConfig::default(), Xoshiro256pp::seed_from_u64(11));

    // Run three simulated days of 5-minute clearings.
    let series = market.run(0, 3 * 288);
    let values = series.values();
    let (min, max) = (
        values.iter().min().expect("non-empty"),
        values.iter().max().expect("non-empty"),
    );
    println!(
        "agent-driven market: {} clearings, price range {} .. {} (On-demand {od})",
        series.len(),
        Price::from_ticks(*min),
        Price::from_ticks(*max)
    );

    // Coarse ASCII sparkline of daily price profiles.
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    for day in 0..3 {
        let row: String = (0..72)
            .map(|i| {
                let v = values[day * 288 + i * 4];
                let level = ((v - min) * 7 / (max - min).max(1)) as usize;
                glyphs[level.min(7)]
            })
            .collect();
        println!("  day {day}: |{row}|");
    }

    // QBETS consumes the emergent series exactly like a recorded history.
    let mut qbets = Qbets::new(QbetsConfig::default());
    for &v in values {
        qbets.observe(v);
    }
    println!(
        "\nQBETS on the emergent series: {} observations, {} change points,",
        qbets.observed(),
        qbets.changepoint_count()
    );
    match qbets.upper_bound(0.975) {
        Some(b) => println!(
            "  0.975-quantile upper bound (c = 0.99): {} -> minimum DrAFTS bid {}",
            Price::from_ticks(b),
            Price::from_ticks(b) + Price::TICK
        ),
        None => println!("  segment still too short for a 0.99-confidence bound"),
    }
}
