//! Workload replay: the §4.3 application-driven experiment in miniature.
//!
//! Replays a workflow-platform job trace against the spot-market substrate
//! under all three provisioning policies and prints a Table-2/3 style
//! comparison.
//!
//! ```text
//! cargo run --release --example workload_replay -- 200
//! ```
//! (number of jobs; default 150)

use drafts::platform::sim::{Replay, ReplayConfig};
use drafts::platform::workload::WorkloadConfig;
use drafts::platform::ProvisionerPolicy;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    println!("replaying a {jobs}-job workload under each policy...\n");
    println!(
        "{:<20} {:>9} {:>10} {:>14} {:>13} {:>9}",
        "policy", "instances", "cost", "max bid cost", "terminations", "makespan"
    );
    for policy in ProvisionerPolicy::ALL {
        let cfg = ReplayConfig {
            policy,
            workload: WorkloadConfig {
                jobs,
                span: 4000,
                ..WorkloadConfig::default()
            },
            ..ReplayConfig::default()
        };
        let m = Replay::new(cfg).run();
        println!(
            "{:<20} {:>9} {:>10} {:>14} {:>13} {:>8}m",
            policy.label(),
            m.instances,
            format!("${:.2}", m.cost.dollars()),
            format!("${:.2}", m.max_bid_cost.dollars()),
            m.terminations,
            m.makespan / 60,
        );
        assert_eq!(m.jobs_completed as usize, jobs, "all jobs must finish");
    }
    println!("\n(DrAFTS policies should cut the worst-case 'max bid cost' sharply.)");
}
