//! # DrAFTS — Durability Agreements From Time Series
//!
//! A from-scratch Rust reproduction of Wolski, Brevik, Chard & Chard,
//! *Probabilistic Guarantees of Execution Duration for Amazon Spot
//! Instances* (SC'17): predict the minimum maximum-bid that keeps a spot
//! instance running for a requested duration with a target probability,
//! plus every substrate the paper's evaluation needs (a spot-market
//! simulator, the QBETS forecasting stack, a backtesting engine, and a
//! workflow-platform provisioner).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`forecast`] (`tsforecast`) — QBETS, binomial quantile bounds,
//!   change-point detection, AR models, order-statistic multisets.
//! * [`market`] (`spotmarket`) — prices, catalog, market clearing, trace
//!   generation, billing, launch simulation.
//! * [`core`] (`drafts-core`) — the two-step DrAFTS predictor, bid-duration
//!   graphs, policies, AZ selection, the cost optimizer, and the service.
//! * [`backtesting`] (`backtest`) — the §4.1/§4.4 evaluation engine.
//! * [`platform`] (`provisioner`) — the §4.3 workload-replay substrate.
//! * [`strategy`] — pluggable bidding strategies (DrAFTS, adaptive
//!   spot/on-demand switching with online availability estimation,
//!   portfolio splits, baselines) for the strategy-driven replay.
//! * [`rng`] (`simrng`) — deterministic random streams.
//! * [`parallel`] — the std-only work-stealing pool the engine and the
//!   experiment harnesses fan out on (`DRAFTS_THREADS` sizes it).
//!
//! # Quickstart
//!
//! ```
//! use drafts::core::predictor::{DraftsConfig, DraftsPredictor};
//! use drafts::market::{tracegen, Az, Catalog, Combo};
//!
//! let catalog = Catalog::standard();
//! let combo = Combo::new(
//!     Az::parse("us-west-2a").unwrap(),
//!     catalog.type_id("c4.large").unwrap(),
//! );
//! let history =
//!     tracegen::generate(combo, catalog, &tracegen::TraceConfig::days(30, 7));
//! let predictor = DraftsPredictor::new(&history, DraftsConfig::default());
//! let quote = predictor.bid_quote(history.len() - 1, 0.95, 3600);
//! println!("bid {} for a 1-hour hold at p = 0.95", quote.bid);
//! ```

pub use backtest as backtesting;
pub use drafts_core as core;
pub use obs;
pub use parallel;
pub use provisioner as platform;
pub use simrng as rng;
pub use spotmarket as market;
pub use strategy;
pub use tsforecast as forecast;
