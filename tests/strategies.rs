//! Strategy-layer invariants: zero-fault plans are invisible, and the
//! online estimators are bounded and deterministic.

use drafts::market::faults::ShardFaults;
use drafts::market::FaultPlan;
use drafts::platform::sim::ReplayConfig;
use drafts::platform::workload::WorkloadConfig;
use drafts::platform::{ProvisionerPolicy, StrategyReplay, StrategyReplayConfig};
use drafts::rng::{Rng, StreamFactory};
use drafts::strategy::estimators::{BetaEstimator, BP};
use drafts::strategy::lineup;

fn base_cfg() -> StrategyReplayConfig {
    StrategyReplayConfig {
        base: ReplayConfig {
            policy: ProvisionerPolicy::DraftsProfiles,
            target_p: 0.95,
            workload: WorkloadConfig {
                jobs: 30,
                span: 2_000,
                ..WorkloadConfig::default()
            },
            ..ReplayConfig::default()
        },
        ..StrategyReplayConfig::default()
    }
}

/// The PR 3 invariant, extended to the strategy replay: wiring zero-fault
/// `FaultyFeed`s and an all-healthy shard plan must reproduce the clean
/// path bit for bit, for every strategy in the lineup.
#[test]
fn zero_fault_plans_reproduce_the_clean_path_for_every_strategy() {
    for mut clean_strategy in lineup() {
        let name = clean_strategy.name();
        let clean = StrategyReplay::new(base_cfg()).run(clean_strategy.as_mut());

        let cfg = StrategyReplayConfig {
            feed_faults: Some(FaultPlan::none(7)),
            shard_faults: ShardFaults::none(3),
            ..base_cfg()
        };
        let mut faulted_strategy = lineup()
            .into_iter()
            .find(|s| s.name() == name)
            .expect("lineup is stable");
        let faulted = StrategyReplay::new(cfg).run(faulted_strategy.as_mut());

        assert_eq!(clean, faulted, "{name}: zero-fault plan must be invisible");
    }
}

/// The Beta-Bayesian availability estimate stays a valid probability in
/// basis points under any seeded observation sequence, and replaying the
/// same sequence reproduces the same estimates.
#[test]
fn beta_estimates_stay_bounded_and_deterministic() {
    let factory = StreamFactory::new(20_171_112);
    for run in 0..4u64 {
        let mut rng_a = factory.stream("beta-prop", run);
        let mut rng_b = factory.stream("beta-prop", run);
        let mut a = BetaEstimator::with_default_prior();
        let mut b = BetaEstimator::with_default_prior();
        for i in 0..2_000u64 {
            a.observe(rng_a.next_f64() < 0.6);
            b.observe(rng_b.next_f64() < 0.6);
            let est = a.availability_bp();
            assert!(est <= BP, "estimate {est} above 10000 bp at step {i}");
            assert_eq!(est, b.availability_bp(), "runs diverged at step {i}");
        }
        assert_eq!(a.observations(), 2_000);
    }
}
