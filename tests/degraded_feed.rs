//! End-to-end degraded-feed behaviour: seeded feed faults flow through the
//! service's health machinery into the provisioning policy, and the whole
//! stack keeps the conservative-degradation invariant — a response marked
//! guaranteed is never backed by data older than the staleness budget.

use drafts::core::predictor::DraftsConfig;
use drafts::core::service::{DraftsService, FeedHealth, ServiceConfig};
use drafts::market::archetype::Archetype;
use drafts::market::faults::{CleanFeed, FaultPlan, FaultyFeed, FeedError, FeedSource};
use drafts::market::tracegen::{generate_with_archetype, TraceConfig};
use drafts::market::{Az, Catalog, Combo, PriceHistory, DAY, HOUR};
use drafts::platform::job::JobProfile;
use drafts::platform::policy::{self, ProvisionerPolicy};
use drafts::market::catalog::Family;
use drafts::market::Region;
use std::sync::Arc;

fn combo() -> Combo {
    let cat = Catalog::standard();
    Combo::new(
        Az::parse("us-west-2a").unwrap(),
        cat.type_id("c4.large").unwrap(),
    )
}

fn history(seed: u64) -> PriceHistory {
    generate_with_archetype(
        combo(),
        Catalog::standard(),
        &TraceConfig::days(30, seed),
        Archetype::Choppy,
    )
}

fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        probabilities: vec![0.95],
        drafts: DraftsConfig {
            changepoint: None,
            autocorr: false,
            duration_stride: 6,
            ..DraftsConfig::default()
        },
        ..ServiceConfig::default()
    }
}

#[test]
fn hostile_feed_degrades_but_never_over_promises() {
    let truth = Arc::new(history(17));
    let plan = FaultPlan::with_intensity(20170101, 1.0);
    let run = || {
        let mut svc = DraftsService::new(service_cfg());
        svc.register_feed(Arc::new(FaultyFeed::new(truth.clone(), plan)));
        let budget = ServiceConfig::default().staleness_budget;
        let period = ServiceConfig::default().recompute_period;
        let mut trace = Vec::new();
        for i in 0..300u64 {
            let now = 10 * DAY + i * period;
            let bucket_time = (now / period) * period;
            match svc.fetch(combo(), now) {
                Some(r) => {
                    if r.is_guaranteed() {
                        assert!(
                            bucket_time.saturating_sub(r.covered_until) <= budget,
                            "guaranteed response served from out-of-budget data at {now}"
                        );
                    }
                    trace.push((r.health, r.covered_until));
                }
                None => trace.push((FeedHealth::Unavailable, 0)),
            }
        }
        trace
    };
    let a = run();
    // An intensity-1 plan must actually degrade something.
    assert!(
        a.iter().any(|(h, _)| !h.is_guaranteed() || matches!(h, FeedHealth::Stale { .. })),
        "hostile plan produced a perfectly fresh feed"
    );
    // And the whole health trace replays identically from the same seed.
    assert_eq!(a, run());
}

#[test]
fn concurrent_fanout_is_single_flighted() {
    let mut svc = DraftsService::new(service_cfg());
    svc.register(history(18));
    let period = ServiceConfig::default().recompute_period;
    let t0 = 20 * DAY;
    let buckets = 5u64;
    let queries: Vec<u64> = (0..40).map(|i| t0 + (i % buckets) * period + i).collect();
    let results = drafts::parallel::Pool::new(8).par_map(&queries, |&t| {
        (t / period, svc.graphs(combo(), t).expect("graphs published"))
    });
    assert_eq!(
        svc.compute_count(),
        buckets,
        "concurrent fan-out must compute each bucket exactly once"
    );
    for (ba, ga) in &results {
        for (bb, gb) in &results {
            if ba == bb {
                assert!(Arc::ptr_eq(ga, gb), "one shared graph set per bucket");
            }
        }
    }
}

#[test]
fn fault_counters_match_the_injected_plan_totals() {
    let truth = Arc::new(history(21));
    let plan = FaultPlan::with_intensity(20170202, 1.0);
    let feed = Arc::new(FaultyFeed::new(truth.clone(), plan));
    let counters = feed.fault_counters();

    // The schedule kinds are fixed at construction and independently
    // recoverable from the delivered series: every dropped update is a
    // missing timestamp, every corruption a changed value at a kept one
    // (corruption always perturbs — a no-op tick never counts).
    let delivered = feed.delivered().clone();
    let drops = (truth.len() - delivered.len()) as u64;
    assert!(drops > 0, "hostile plan must drop updates");
    assert_eq!(counters.drops.get(), drops);
    let mut corrupted = 0u64;
    let mut ti = 0usize;
    for k in 0..delivered.len() {
        let t = delivered.time(k);
        while truth.time(ti) < t {
            ti += 1;
        }
        assert_eq!(truth.time(ti), t, "delivered times must be a subset");
        if truth.series().values()[ti] != delivered.series().values()[k] {
            corrupted += 1;
        }
    }
    assert_eq!(counters.corruptions.get(), corrupted);
    assert!(counters.duplicates.get() > 0);
    assert!(counters.reorders.get() > 0);

    // The poll-time kinds count live: exactly one increment per rejected
    // poll, matching the errors the client actually saw.
    let (mut outages, mut throttles) = (0u64, 0u64);
    for now in (0..30 * DAY).step_by(900) {
        match feed.poll(now, 0) {
            Err(FeedError::Outage { .. }) => outages += 1,
            Err(FeedError::Throttled) => throttles += 1,
            Ok(_) => {}
        }
    }
    assert!(outages > 0 && throttles > 0, "hostile plan must reject polls");
    assert_eq!(counters.outage_polls.get(), outages);
    assert_eq!(counters.throttled_polls.get(), throttles);

    // A twin feed from the same plan injects the identical totals.
    let twin = FaultyFeed::new(truth.clone(), plan);
    let tc = twin.fault_counters();
    assert_eq!(counters.drops.get(), tc.drops.get());
    assert_eq!(counters.duplicates.get(), tc.duplicates.get());
    assert_eq!(counters.corruptions.get(), tc.corruptions.get());
    assert_eq!(counters.reorders.get(), tc.reorders.get());

    // Booting a service over the feed exposes the same totals in the
    // registry, labelled by combo.
    let registry = drafts::obs::Registry::new();
    let mut svc = DraftsService::new(service_cfg());
    svc.register_feed(feed.clone());
    svc.register_metrics(&registry);
    let text = registry.render_text();
    let label = format!("{}/{}", combo().az, combo().ty.0);
    assert!(
        text.contains(&format!(
            "drafts_feed_faults_total{{combo=\"{label}\",kind=\"drop\"}} {drops}\n"
        )),
        "missing drop line in:\n{text}"
    );
    assert!(text.contains(&format!(
        "drafts_feed_faults_total{{combo=\"{label}\",kind=\"outage_poll\"}} {outages}\n"
    )));
}

#[test]
fn transition_and_fault_events_match_an_independent_replay_of_the_plan() {
    let truth = Arc::new(history(23));
    let plan = FaultPlan::with_intensity(20170404, 1.0);
    let period = ServiceConfig::default().recompute_period;
    let steps: Vec<u64> = (0..300u64).map(|i| 10 * DAY + i * period).collect();

    let run = || {
        let mut svc = DraftsService::new(service_cfg());
        svc.register_feed(Arc::new(FaultyFeed::new(truth.clone(), plan)));
        let log = drafts::obs::EventLog::new(4096);
        svc.attach_events(&log);
        let mut labels: Vec<Option<&'static str>> = Vec::new();
        for &now in &steps {
            labels.push(svc.fetch(combo(), now).map(|r| match r.health {
                FeedHealth::Fresh => "fresh",
                FeedHealth::Stale { .. } => "stale",
                FeedHealth::Unavailable => "unavailable",
            }));
        }
        (labels, log.snapshot())
    };
    let (labels, events) = run();

    // The health_transition event stream must replay exactly the
    // deduplicated health trace observable through the public fetch API —
    // no missing, extra, or reordered transitions.
    let mut expected: Vec<(String, String)> = Vec::new();
    let mut prev: Option<&str> = None;
    for &label in labels.iter().flatten() {
        if prev != Some(label) {
            expected.push((prev.unwrap_or("none").to_string(), label.to_string()));
            prev = Some(label);
        }
    }
    let got: Vec<(String, String)> = events
        .iter()
        .filter(|e| e.kind == "health_transition")
        .map(|e| {
            let field = |k: &str| {
                e.fields.iter().find(|(n, _)| *n == k).unwrap().1.clone()
            };
            assert_eq!(
                field("combo"),
                format!("{}/{}", combo().az, combo().ty.0),
                "events must carry the canonical combo label"
            );
            (field("from"), field("to"))
        })
        .collect();
    assert_eq!(got, expected, "event stream diverges from the health trace");
    // The hostile plan must exercise the full decay arc and a recovery.
    let has = |f: &str, t: &str| expected.iter().any(|(a, b)| a == f && b == t);
    assert!(has("fresh", "stale"), "no fresh->stale transition: {expected:?}");
    assert!(
        has("stale", "unavailable"),
        "no stale->unavailable transition: {expected:?}"
    );
    assert!(
        expected.iter().any(|(f, t)| t == "fresh" && f != "none"),
        "no recovery back to fresh: {expected:?}"
    );

    // Fault onset / recovery events must match an independent replay of
    // the service's retry loop against a twin feed built from the same
    // plan (the same cross-check style the fault counters get above).
    let twin = FaultyFeed::new(truth.clone(), plan);
    let cfg = ServiceConfig::default();
    let (mut faults, mut recoveries) = (0u64, 0u64);
    for &bucket_time in &steps {
        let mut poll_at = bucket_time;
        let mut attempt: u32 = 0;
        loop {
            match twin.poll(poll_at, attempt) {
                Ok(_) => {
                    if attempt > 0 {
                        recoveries += 1;
                    }
                    break;
                }
                Err(_) => {
                    if attempt >= cfg.max_retries {
                        faults += 1;
                        break;
                    }
                    poll_at += cfg.retry_backoff << attempt;
                    attempt += 1;
                }
            }
        }
    }
    assert!(faults > 0, "an intensity-1 plan must exhaust some retry budgets");
    let count = |kind: &str| events.iter().filter(|e| e.kind == kind).count() as u64;
    assert_eq!(count("feed_fault"), faults);
    assert_eq!(count("feed_recovered"), recoveries);

    // And the whole event stream replays bit-for-bit from the same seed.
    assert_eq!(run().1, events);
}

/// A feed with one fixed outage window.
struct OutageFeed {
    inner: CleanFeed,
    from: u64,
    until: u64,
}

impl FeedSource for OutageFeed {
    fn combo(&self) -> Combo {
        self.inner.combo()
    }
    fn poll(&self, now: u64, attempt: u32) -> Result<Arc<PriceHistory>, FeedError> {
        if (self.from..self.until).contains(&now) {
            Err(FeedError::Outage { until: self.until })
        } else {
            self.inner.poll(now, attempt)
        }
    }
}

#[test]
fn policy_refuses_spot_on_an_out_of_budget_market() {
    let day20 = 20 * DAY;
    let mut svc = DraftsService::new(service_cfg());
    svc.register_feed(Arc::new(OutageFeed {
        inner: CleanFeed::new(Arc::new(history(19))),
        from: day20,
        until: day20 + 6 * HOUR,
    }));
    let profile = JobProfile {
        family: Family::Compute,
        min_vcpus: 2,
        min_mem_gb: 3.0,
        est_runtime: 900,
    };
    let cat = Catalog::standard();
    let healthy = policy::plan(
        ProvisionerPolicy::Drafts1Hr,
        cat,
        &svc,
        Region::UsWest2,
        &profile,
        day20 - HOUR,
        0.95,
    );
    assert!(healthy.is_some(), "pre-outage the market quotes normally");

    // Deep in the outage, past the staleness budget: the service still
    // serves last-good graphs, but flags them no-guarantee — and the
    // DrAFTS policy must refuse to launch spot on them.
    let degraded = policy::plan(
        ProvisionerPolicy::Drafts1Hr,
        cat,
        &svc,
        Region::UsWest2,
        &profile,
        day20 + 3 * HOUR,
        0.95,
    );
    assert!(
        degraded.is_none(),
        "no-guarantee fallbacks must not produce spot launch plans"
    );
}
