//! Service <-> provisioner integration: the in-process DrAFTS service
//! answers the provisioner's queries with the same graphs a REST client
//! would poll, and the replay produces the paper's qualitative Table 2.

use drafts::core::predictor::DraftsConfig;
use drafts::core::service::{DraftsService, ServiceConfig};
use drafts::market::archetype::Archetype;
use drafts::market::tracegen::{generate_with_archetype, TraceConfig};
use drafts::market::{Az, Catalog, Combo, DAY, MINUTE};
use drafts::platform::sim::{Replay, ReplayConfig};
use drafts::platform::workload::WorkloadConfig;
use drafts::platform::ProvisionerPolicy;

#[test]
fn service_graphs_drive_bids_that_survive_replay() {
    let cfg = |policy| ReplayConfig {
        policy,
        target_p: 0.95,
        workload: WorkloadConfig {
            jobs: 80,
            span: 3000,
            ..WorkloadConfig::default()
        },
        ..ReplayConfig::default()
    };
    let original = Replay::new(cfg(ProvisionerPolicy::Original)).run();
    let drafts = Replay::new(cfg(ProvisionerPolicy::Drafts1Hr)).run();

    assert_eq!(original.jobs_completed, 80);
    assert_eq!(drafts.jobs_completed, 80);
    // Table 2's shape: DrAFTS reduces worst-case (bid-valued) cost.
    assert!(drafts.max_bid_cost < original.max_bid_cost);
    // And stays within the durability spirit: very few terminations.
    assert!(drafts.terminations <= 2, "{} terminations", drafts.terminations);
}

#[test]
fn service_respects_refresh_buckets_under_load() {
    let cat = Catalog::standard();
    let combo = Combo::new(
        Az::parse("us-west-1a").unwrap(),
        cat.type_id("c3.2xlarge").unwrap(),
    );
    let h = generate_with_archetype(
        combo,
        cat,
        &TraceConfig::days(20, 5),
        Archetype::Choppy,
    );
    let mut svc = DraftsService::new(ServiceConfig {
        recompute_period: 15 * MINUTE,
        probabilities: vec![0.95],
        drafts: DraftsConfig {
            duration_stride: 6,
            ..DraftsConfig::default()
        },
        ..ServiceConfig::default()
    });
    svc.register(h);
    // Many queries inside one bucket -> exactly one computation.
    let t0 = 18 * DAY;
    for i in 0..50 {
        let _ = svc.graphs(combo, t0 + i * 10).unwrap();
    }
    assert_eq!(svc.compute_count(), 1);
    // Crossing the bucket boundary triggers exactly one more.
    let _ = svc.graphs(combo, t0 + 15 * MINUTE).unwrap();
    assert_eq!(svc.compute_count(), 2);
}
