//! Cross-cutting determinism: the same seed reproduces identical traces,
//! workloads, replays and launch experiments bit-for-bit.

use drafts::market::{tracegen, Az, Catalog, Combo};
use drafts::platform::workload::{self, WorkloadConfig};
use drafts::rng::StreamFactory;

#[test]
fn traces_differ_across_combos_but_not_across_runs() {
    let cat = Catalog::standard();
    let cfg = tracegen::TraceConfig::days(5, 99);
    let combos: Vec<Combo> = cat.combos_in_az(Az::parse("us-west-1b").unwrap());
    let first: Vec<_> = combos
        .iter()
        .take(6)
        .map(|&c| tracegen::generate(c, cat, &cfg))
        .collect();
    let second: Vec<_> = combos
        .iter()
        .take(6)
        .map(|&c| tracegen::generate(c, cat, &cfg))
        .collect();
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.series(), b.series());
    }
    for w in first.windows(2) {
        assert_ne!(w[0].series(), w[1].series(), "combos must decorrelate");
    }
}

#[test]
fn workload_streams_are_independent_of_market_streams() {
    // Drawing market traces must not perturb the workload stream (keyed
    // substreams, not a shared sequential RNG).
    let f = StreamFactory::new(20171112);
    let w1 = workload::generate(&WorkloadConfig::default(), &f, 3);
    let cat = Catalog::standard();
    let combo = Combo::new(
        Az::parse("us-east-1e").unwrap(),
        cat.type_id("m1.small").unwrap(),
    );
    let _trace = tracegen::generate(combo, cat, &tracegen::TraceConfig::days(3, 20171112));
    let w2 = workload::generate(&WorkloadConfig::default(), &f, 3);
    assert_eq!(w1, w2);
}
