//! End-to-end fleet tests over real loopback sockets: chaos failover
//! after a genuine shard crash, graceful drain mid-failover, explicit
//! refusal when a key's whole owner set is gone, and two-boot byte
//! determinism under a seeded logical fault plan.
//!
//! The experiments harness (`repro fleet`) exercises the *logical*
//! fault path, where chaos is evaluated in virtual time and everything
//! is byte-deterministic. These tests exercise the *transport* path:
//! shards really stop, the front really sees connection failures, and
//! the probe state machine really walks Up → Degraded → Down.

use drafts_core::predictor::DraftsConfig;
use drafts_core::service::ServiceConfig;
use drafts_core::DraftsService;
use server::{Fleet, FleetConfig, Json};
use spotmarket::archetype::Archetype;
use spotmarket::faults::ShardFaults;
use spotmarket::tracegen::{generate_with_archetype, TraceConfig};
use spotmarket::{Az, Catalog, Combo, PriceHistory, DAY};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0xF1EE7;
const NOW: u64 = 20 * DAY; // bucket-aligned; tests stay inside one bucket

fn combos() -> Vec<Combo> {
    let catalog = Catalog::standard();
    [
        ("us-east-1c", "c3.4xlarge"),
        ("us-west-2a", "c4.large"),
        ("us-east-1b", "c3.xlarge"),
        ("us-west-1a", "c4.xlarge"),
        ("us-east-1d", "c4.2xlarge"),
        ("us-west-2b", "c3.large"),
    ]
    .iter()
    .map(|&(az, ty)| {
        Combo::new(
            Az::parse(az).expect("known az"),
            catalog.type_id(ty).expect("known type"),
        )
    })
    .collect()
}

/// Builds the per-shard services from the config's ring (primary +
/// replica each get the combo's history), warms them, boots the fleet.
fn boot(cfg: FleetConfig) -> (Fleet, Vec<Combo>) {
    let catalog = Catalog::standard();
    let combos = combos();
    let ring = cfg.ring();
    let histories: Vec<PriceHistory> = combos
        .iter()
        .enumerate()
        .map(|(i, &combo)| {
            let archetype = match i % 3 {
                0 => Archetype::Choppy,
                1 => Archetype::Calm,
                _ => Archetype::Spiky,
            };
            generate_with_archetype(
                combo,
                catalog,
                &TraceConfig::days(30, SEED ^ (i as u64 + 1)),
                archetype,
            )
        })
        .collect();
    let services: Vec<Arc<DraftsService>> = (0..cfg.shards)
        .map(|shard| {
            let mut svc = DraftsService::new(ServiceConfig {
                drafts: DraftsConfig {
                    changepoint: None,
                    autocorr: false,
                    duration_stride: 6,
                    ..DraftsConfig::default()
                },
                ..ServiceConfig::default()
            });
            for (i, &combo) in combos.iter().enumerate() {
                if ring.owners(combo.key()).contains(&shard) {
                    svc.register(histories[i].clone());
                }
            }
            svc.warm(NOW);
            Arc::new(svc)
        })
        .collect();
    let fleet = Fleet::start(services, NOW, cfg).expect("boot fleet");
    (fleet, combos)
}

fn graphs_path(combo: Combo, now: u64) -> String {
    let catalog = Catalog::standard();
    format!(
        "/v1/graphs/{}/{}/{}?p=0.95&now={now}",
        combo.az.region().name(),
        combo.az.name(),
        catalog.spec(combo.ty).name,
    )
}

fn get(client: &mut loadgen::Client, path: &str) -> (u16, Json) {
    let (status, body) = client.get(path).expect("front reachable");
    let text = std::str::from_utf8(&body).expect("utf8 body");
    (status, Json::parse(text).expect("json body"))
}

fn str_field<'j>(doc: &'j Json, key: &str) -> &'j str {
    doc.get(key).and_then(Json::as_str).unwrap_or("")
}

fn degraded(doc: &Json) -> bool {
    doc.get("degraded").and_then(Json::as_bool).unwrap_or(false)
}

/// The tentpole invariant, checked response by response: an answer that
/// claims to be fresh (`degraded: false`) must come from the combo's
/// primary ring owner — anything else is silently stale.
fn assert_fresh_or_tagged(cfg: &FleetConfig, combo: Combo, status: u16, doc: &Json) {
    if status != 200 {
        assert!(
            degraded(doc),
            "a refusal must be explicitly degraded: {}",
            doc.render()
        );
        return;
    }
    if !degraded(doc) {
        let primary = format!("shard-{}", cfg.ring().primary(combo.key()));
        assert_eq!(
            str_field(doc, "served_by"),
            primary,
            "fresh-looking answer not served by the primary owner"
        );
    }
}

#[test]
fn crashed_shard_fails_over_with_explicit_degraded_tags() {
    let cfg = FleetConfig::new(3);
    let (mut fleet, combos) = boot(cfg.clone());
    let ring = cfg.ring();
    let mut client = loadgen::Client::new(fleet.addr(), Duration::from_secs(5));

    // Healthy fleet: every combo fresh from its primary, and the shard
    // servers answer with their own stable instance identities.
    for &combo in &combos {
        let (status, doc) = get(&mut client, &graphs_path(combo, NOW));
        assert_eq!(status, 200);
        assert!(!degraded(&doc), "healthy fleet must not degrade");
        let primary = format!("shard-{}", ring.primary(combo.key()));
        assert_eq!(str_field(&doc, "served_by"), primary);
        assert_eq!(doc.get("failover").and_then(Json::as_bool), Some(false));
    }
    for shard in 0..cfg.shards {
        let mut direct = loadgen::Client::new(fleet.shard_addr(shard), Duration::from_secs(5));
        let (status, doc) = get(&mut direct, "/v1/health");
        assert_eq!(status, 200);
        assert_eq!(str_field(&doc, "instance"), format!("shard-{shard}"));
    }

    // Crash the primary owner of the first combo — the front is not
    // told; it has to notice via proxy errors and failing probes.
    let victim = ring.primary(combos[0].key());
    fleet.kill_shard(victim);

    // March virtual time across probe slots. Every answer stays either
    // fresh-from-primary or explicitly degraded; victim-owned combos
    // fail over to their replica.
    for now in [NOW + 30, NOW + 60, NOW + 90, NOW + 120] {
        for &combo in &combos {
            let (status, doc) = get(&mut client, &graphs_path(combo, now));
            assert_eq!(status, 200, "replication 2 absorbs one crash");
            assert_fresh_or_tagged(&cfg, combo, status, &doc);
            if ring.primary(combo.key()) == victim {
                assert!(degraded(&doc), "failover answers must be tagged");
                assert_ne!(str_field(&doc, "served_by"), format!("shard-{victim}"));
                assert_eq!(doc.get("failover").and_then(Json::as_bool), Some(true));
            }
        }
    }

    // The probe state machine saw real failures and took the victim to
    // `down`; the front's health rollup says so and still reports every
    // combo as served (by the replicas).
    assert!(fleet.front().counters().probe_failures[victim].get() >= 2);
    let (status, health) = get(&mut client, &format!("/v1/health?now={}", NOW + 120));
    assert_eq!(status, 200);
    assert_eq!(str_field(&health, "instance"), "fleet-front");
    let shards = health.get("shards").and_then(Json::as_arr).expect("shards");
    assert_eq!(str_field(&shards[victim], "state"), "down");
    let unavailable = health
        .get("counts")
        .and_then(|c| c.get("unavailable"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(unavailable, 0, "replicas cover every combo");

    // Bids keep flowing too: the winner is never silently stale.
    let (status, bid) = get(&mut client, &format!("/v1/bid?duration=3600&now={}", NOW + 120));
    assert_eq!(status, 200);
    let quoted = Combo::new(
        Az::parse(str_field(&bid, "az")).expect("az"),
        Catalog::standard()
            .type_id(str_field(&bid, "type"))
            .expect("type"),
    );
    assert_fresh_or_tagged(&cfg, quoted, status, &bid);

    fleet.shutdown();
}

#[test]
fn graceful_drain_mid_failover_never_drops_admitted_work() {
    let cfg = FleetConfig::new(3);
    let (mut fleet, combos) = boot(cfg.clone());
    let ring = cfg.ring();
    let addr = fleet.addr();

    // Put the fleet mid-failover first: crash one shard for real.
    let crashed = ring.primary(combos[0].key());
    fleet.kill_shard(crashed);
    // Then gracefully drain a *different* shard while client threads
    // hammer the front — the SIGTERM path under chaos.
    let drained = (0..cfg.shards)
        .find(|&s| s != crashed)
        .expect("another shard");

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut workers = Vec::new();
    for worker in 0..4 {
        let stop = stop.clone();
        let combos = combos.clone();
        workers.push(std::thread::spawn(move || {
            let mut client = loadgen::Client::new(addr, Duration::from_secs(5));
            let mut answers = Vec::new();
            let mut i = worker;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let combo = combos[i % combos.len()];
                // Virtual time past the probe grid's first failure slots.
                let path = graphs_path(combo, NOW + 30 + (i % 4) as u64 * 30);
                if let Ok((status, body)) = client.get(&path) {
                    answers.push((combo, status, body));
                }
                i += 1;
            }
            answers
        }));
    }
    // Let the workers get in flight, then drain mid-traffic.
    std::thread::sleep(Duration::from_millis(50));
    let report = fleet.drain_shard(drained);
    assert_eq!(
        report.admitted, report.served,
        "graceful drain dropped admitted work"
    );
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);

    let mut total = 0usize;
    for worker in workers {
        for (combo, status, body) in worker.join().expect("worker") {
            total += 1;
            let text = std::str::from_utf8(&body).expect("utf8");
            let doc = Json::parse(text).expect("json");
            // Every answer across the crash + drain window is honest:
            // fresh-from-primary, explicitly degraded, or an explicitly
            // degraded refusal. Never a stale answer, never a torn one.
            assert_fresh_or_tagged(&cfg, combo, status, &doc);
        }
    }
    assert!(total > 0, "workers observed no traffic");

    // After the drain the front refuses to route new work there.
    let mut client = loadgen::Client::new(addr, Duration::from_secs(5));
    for &combo in &combos {
        let (status, doc) = get(&mut client, &graphs_path(combo, NOW + 150));
        assert_fresh_or_tagged(&cfg, combo, status, &doc);
        if status == 200 {
            assert_ne!(
                str_field(&doc, "served_by"),
                format!("shard-{drained}"),
                "front routed new work to a drained shard"
            );
        }
    }
    let (_, health) = get(&mut client, &format!("/v1/health?now={}", NOW + 150));
    let shards = health.get("shards").and_then(Json::as_arr).expect("shards");
    assert_eq!(str_field(&shards[drained], "state"), "draining");

    fleet.shutdown();
}

#[test]
fn losing_every_owner_refuses_explicitly_instead_of_guessing() {
    // Two shards, replication 2: every combo is owned by both, so
    // killing both leaves no routable owner for anything.
    let cfg = FleetConfig::new(2);
    let (mut fleet, combos) = boot(cfg.clone());
    let mut client = loadgen::Client::new(fleet.addr(), Duration::from_secs(5));

    fleet.kill_shard(0);
    fleet.kill_shard(1);

    // Walk past `down_after` probe slots so both shards are Down; the
    // front must refuse with 503 + Retry-After + an explicit degraded
    // marker — a refused guarantee, never a silent guess.
    for now in [NOW + 30, NOW + 60, NOW + 120] {
        let (status, doc) = get(&mut client, &graphs_path(combos[0], now));
        assert_eq!(status, 503);
        assert!(degraded(&doc), "refusal must carry degraded: true");
        assert!(!str_field(&doc, "error").is_empty());
        assert_eq!(client.retry_after(), Some(1), "503 must carry Retry-After");
        let (status, doc) = get(&mut client, &format!("/v1/bid?duration=3600&now={now}"));
        assert_eq!(status, 503);
        assert!(degraded(&doc));
    }
    assert!(fleet.front().counters().refused.get() >= 6);

    fleet.shutdown();
}

#[test]
fn fleet_rollups_and_timelines_are_two_boot_identical_with_tracing_on() {
    // The determinism contract extended to the observability plane:
    // with tracing rings enabled and chaos expressed as a seeded
    // logical fault plan, two independently booted fleets answer the
    // fleet rollups and every merged per-request timeline with
    // identical bytes — and the silently-stale audit still holds with
    // tracing on. The only quarantined lines are the wall-clock `*_ns`
    // histogram families in the metrics exposition (span and latency
    // durations are real nanoseconds, the one explicitly wall-clock
    // artifact); every other exposition line must match byte-for-byte.
    let mut cfg = FleetConfig::new(3);
    cfg.faults = ShardFaults::sample(SEED, 3, (NOW, NOW + 240), 1, 0, 1);
    cfg.debug_routes = true;
    cfg.shard_server.trace_log = 1024;
    cfg.front_server.trace_log = 1024;
    let (fleet_a, combos) = boot(cfg.clone());
    let (fleet_b, _) = boot(cfg.clone());
    let mut a = loadgen::Client::new(fleet_a.addr(), Duration::from_secs(5));
    let mut b = loadgen::Client::new(fleet_b.addr(), Duration::from_secs(5));

    // Drive both fleets with the identical traced request sequence,
    // marching across the fault window; every response matches.
    let mut paths = Vec::new();
    for now in (NOW..NOW + 240).step_by(30) {
        for &combo in &combos {
            paths.push(graphs_path(combo, now));
        }
        paths.push(format!("/v1/bid?duration=3600&p=0.95&now={now}"));
        paths.push(format!("/v1/health?now={now}"));
    }
    let trace_of = |path: &str| obs::TraceIdGen::derive(SEED, path);
    for path in &paths {
        let ctx = obs::TraceContext::root(trace_of(path)).encode();
        let ra = a.get_traced(path, Some(&ctx)).expect("fleet A");
        let rb = b.get_traced(path, Some(&ctx)).expect("fleet B");
        assert_eq!(ra, rb, "boots diverged on {path}");
    }

    // Every request's fleet-merged timeline reconstructs to identical
    // bytes on both boots (queried at the pre-onset now so every shard
    // contributes to the merge).
    for path in &paths {
        let tpath = format!("/v1/_debug/trace/{:016x}?now={NOW}", trace_of(path));
        let ra = a.get(&tpath).expect("fleet A timeline");
        let rb = b.get(&tpath).expect("fleet B timeline");
        assert_eq!(ra.0, 200, "timeline lost for {path}");
        assert_eq!(ra, rb, "timelines diverged for {path}");
    }

    // The SLO rollup is fully deterministic: burn rates and window
    // counts are virtual-time functions of the request sequence.
    let spath = format!("/v1/fleet/slo?now={}", NOW + 240);
    let ra = a.get(&spath).expect("fleet A slo");
    let rb = b.get(&spath).expect("fleet B slo");
    assert_eq!(ra.0, 200);
    assert_eq!(ra, rb, "SLO rollups diverged");
    let slo = Json::parse(std::str::from_utf8(&ra.1).unwrap()).expect("slo json");
    let instances = slo.get("instances").and_then(Json::as_arr).expect("instances");
    assert_eq!(instances.len(), 1 + cfg.shards, "front + every shard");

    // The metrics rollup matches byte-for-byte outside the wall-clock
    // `*_ns` histogram families, and labels every sample by instance.
    let mpath = format!("/v1/fleet/metrics?now={}", NOW + 240);
    let (sa, ba) = a.get(&mpath).expect("fleet A metrics");
    let (sb, bb) = b.get(&mpath).expect("fleet B metrics");
    assert_eq!((sa, sb), (200, 200));
    let deterministic = |body: &[u8]| -> String {
        std::str::from_utf8(body)
            .expect("utf8 exposition")
            .lines()
            .filter(|line| !line.contains("_ns"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let (da, db) = (deterministic(&ba), deterministic(&bb));
    assert_eq!(da, db, "metrics rollups diverged outside wall-clock families");
    for instance in ["front", "shard-0", "shard-1", "shard-2"] {
        assert!(
            da.contains(&format!("instance=\"{instance}\"")),
            "rollup missing {instance}"
        );
        assert!(
            da.contains(&format!("drafts_fleet_instance_up{{instance=\"{instance}\"}}")),
            "rollup missing up marker for {instance}"
        );
    }

    // The silently-stale audit passes with tracing on: past every fault
    // onset, answers are still fresh-from-primary or explicitly tagged.
    for &combo in &combos {
        let (status, doc) = get(&mut a, &graphs_path(combo, NOW + 240));
        assert_fresh_or_tagged(&cfg, combo, status, &doc);
    }

    fleet_a.shutdown();
    fleet_b.shutdown();
}

#[test]
fn two_boots_answer_identical_bytes_under_seeded_chaos() {
    // The determinism contract extended to the fleet: with chaos
    // expressed as a seeded logical fault plan evaluated in virtual
    // time, two independently booted fleets (different ephemeral ports,
    // different thread interleavings) answer every request with
    // identical bytes.
    let mut cfg = FleetConfig::new(3);
    cfg.faults = ShardFaults::sample(SEED, 3, (NOW, NOW + 240), 1, 0, 1);
    let (fleet_a, combos) = boot(cfg.clone());
    let (fleet_b, _) = boot(cfg.clone());
    let mut a = loadgen::Client::new(fleet_a.addr(), Duration::from_secs(5));
    let mut b = loadgen::Client::new(fleet_b.addr(), Duration::from_secs(5));

    let mut paths = Vec::new();
    for now in (NOW..NOW + 240).step_by(30) {
        for &combo in &combos {
            paths.push(graphs_path(combo, now));
        }
        paths.push(format!("/v1/bid?duration=3600&p=0.95&now={now}"));
        paths.push(format!("/v1/bid?duration=7200&now={now}"));
        paths.push(format!("/v1/health?now={now}"));
    }
    for path in &paths {
        let ra = a.get(path).expect("fleet A");
        let rb = b.get(path).expect("fleet B");
        assert_eq!(ra, rb, "boots diverged on {path}");
    }

    fleet_a.shutdown();
    fleet_b.shutdown();
}
