//! End-to-end tests of the drafts-serve layer over real loopback sockets:
//! keep-alive concurrency, byte-determinism across independently booted
//! servers, load shedding under a saturated accept queue, graceful drain,
//! and handler-panic isolation.

use drafts_core::predictor::DraftsConfig;
use drafts_core::service::{DraftsService, ServiceConfig};
use spotmarket::archetype::Archetype;
use spotmarket::faults::{CleanFeed, FeedError, FeedSource};
use spotmarket::tracegen::{generate_with_archetype, TraceConfig};
use spotmarket::{Az, Catalog, Combo, PriceHistory, DAY, HOUR};
use loadgen::Client;
use server::{Router, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const NOW: u64 = 20 * DAY;

/// A two-market service, deterministic in `seed`.
fn service(seed: u64) -> DraftsService {
    let catalog = Catalog::standard();
    let mut svc = DraftsService::new(ServiceConfig {
        drafts: DraftsConfig {
            changepoint: None,
            autocorr: false,
            duration_stride: 6,
            ..DraftsConfig::default()
        },
        ..ServiceConfig::default()
    });
    for (i, (az, ty)) in [("us-east-1c", "c3.4xlarge"), ("us-west-2a", "c4.large")]
        .into_iter()
        .enumerate()
    {
        let combo = Combo::new(
            Az::parse(az).unwrap(),
            catalog.type_id(ty).unwrap(),
        );
        svc.register(generate_with_archetype(
            combo,
            catalog,
            &TraceConfig::days(30, seed ^ (i as u64 + 1)),
            Archetype::Choppy,
        ));
    }
    svc
}

fn start(seed: u64, cfg: ServerConfig) -> Server {
    let router = Router::new(Arc::new(service(seed)), NOW);
    Server::start(router, cfg).expect("bind loopback")
}

fn start_debug(seed: u64, cfg: ServerConfig) -> Server {
    let router = Router::new(Arc::new(service(seed)), NOW).with_debug_routes();
    Server::start(router, cfg).expect("bind loopback")
}

/// One raw `Connection: close` round trip; returns the full response
/// bytes, headers included.
fn raw_get(addr: SocketAddr, path: &str) -> Vec<u8> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    conn.set_nodelay(true).unwrap();
    conn.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .expect("send");
    let mut out = Vec::new();
    conn.read_to_end(&mut out).expect("read");
    out
}

const PATHS: [&str; 5] = [
    "/v1/graphs/us-east-1/us-east-1c/c3.4xlarge",
    "/v1/graphs/us-east-1/us-east-1c/c3.4xlarge?p=0.95",
    "/v1/bid?duration=3600&p=0.95",
    "/v1/bid?duration=43200",
    "/v1/health",
];

#[test]
fn concurrent_keepalive_clients_see_identical_bytes_across_two_runs() {
    // Two servers booted independently from the same seed...
    let a = start(77, ServerConfig::default());
    let b = start(77, ServerConfig::default());

    // ...serve byte-identical responses (headers included: no Date, fixed
    // header order, deterministic JSON rendering).
    for path in PATHS {
        assert_eq!(
            raw_get(a.addr(), path),
            raw_get(b.addr(), path),
            "response bytes differ for {path}"
        );
    }

    // Concurrent keep-alive clients: every thread reuses one connection
    // for all paths, and every thread sees the same bodies.
    let addr = a.addr();
    let mut per_thread: Vec<Vec<(u16, Vec<u8>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::new(addr, Duration::from_secs(5));
                    PATHS
                        .iter()
                        .map(|p| client.get(p).expect("keep-alive get"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let first = per_thread.pop().unwrap();
    for other in per_thread {
        assert_eq!(first, other, "threads observed different responses");
    }
    assert!(first.iter().all(|(status, _)| *status == 200));

    let ra = a.shutdown();
    assert_eq!(ra.admitted, ra.served);
    b.shutdown();
}

#[test]
fn saturated_accept_queue_sheds_503_and_never_hangs() {
    let srv = start(
        78,
        ServerConfig {
            workers: 1,
            accept_queue: 1,
            connection_deadline: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    );
    let addr = srv.addr();

    // Pin the single worker: a connection that sends no request holds it
    // until the 300 ms read deadline fires.
    let mut stall = TcpStream::connect(addr).expect("stall connect");
    std::thread::sleep(Duration::from_millis(50));

    // Flood past the one-slot queue. Everything must resolve quickly —
    // either a 200 (the queued slot, served after the stall times out)
    // or an immediate 503 with Retry-After; nothing may hang.
    let results: Vec<(u16, Vec<u8>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::new(addr, Duration::from_secs(5));
                    client.get("/v1/health").expect("flood get resolves")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let shed = results.iter().filter(|(s, _)| *s == 503).count();
    let ok = results.iter().filter(|(s, _)| *s == 200).count();
    assert_eq!(shed + ok, 8, "unexpected statuses: {results:?}");
    assert!(shed >= 1, "flooding a full queue must shed");
    assert!(srv.metrics().shed.get() >= shed as u64);

    // The shed response carries the backoff hint.
    if let Some((_, body)) = results.iter().find(|(s, _)| *s == 503) {
        assert!(
            String::from_utf8_lossy(body).contains("overloaded"),
            "503 body should say overloaded"
        );
    }

    // Late requests succeed once the flood clears.
    let mut client = Client::new(addr, Duration::from_secs(5));
    let waited = obs::Stopwatch::start();
    loop {
        match client.get("/v1/health") {
            Ok((200, _)) => break,
            _ if waited.elapsed() < Duration::from_secs(5) => {
                std::thread::sleep(Duration::from_millis(50))
            }
            other => panic!("server never recovered: {other:?}"),
        }
    }
    stall.write_all(b" ").ok();
    drop(stall);
    let report = srv.shutdown();
    assert_eq!(report.admitted, report.served, "drain dropped admitted work");
}

#[test]
fn graceful_drain_finishes_in_flight_requests() {
    let srv = start(
        79,
        ServerConfig {
            workers: 2,
            connection_deadline: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    );
    let addr = srv.addr();

    // Admit a connection whose request arrives only *after* shutdown has
    // begun: the drain must still serve it, not sever it.
    let mut lagging = TcpStream::connect(addr).expect("connect");
    lagging.set_nodelay(true).unwrap();
    lagging
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(50)); // ensure it is admitted

    let shutdown = std::thread::spawn(move || srv.shutdown());
    std::thread::sleep(Duration::from_millis(100));
    lagging
        .write_all(b"GET /v1/health HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send during drain");
    let mut response = Vec::new();
    lagging.read_to_end(&mut response).expect("read during drain");
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("HTTP/1.1 200 OK\r\n"),
        "in-flight request must complete during drain, got: {text}"
    );
    assert!(
        text.contains("Connection: close"),
        "drain must close keep-alive connections after the response"
    );

    let report = shutdown.join().expect("shutdown thread");
    assert_eq!(report.admitted, report.served, "drain dropped admitted work");
    assert!(report.admitted >= 1);
}

#[test]
fn handler_panics_are_isolated_from_other_connections_and_workers() {
    let srv = start_debug(
        80,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );
    let addr = srv.addr();

    // Hammer the panic route from several threads, interleaved with real
    // traffic on the same worker pool. The shared service state behind
    // `parallel::lock_clean` must stay usable: a panicked handler cannot
    // poison it for anyone else.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(move || {
                let mut client = Client::new(addr, Duration::from_secs(5));
                for _ in 0..5 {
                    let (status, _) =
                        client.get("/v1/_debug/panic").expect("panic route responds");
                    assert_eq!(status, 500, "panic surfaces as 500, not a hang");
                    let (status, _) = client.get("/v1/health").expect("health after panic");
                    assert_eq!(status, 200, "worker must survive the panic");
                }
            });
        }
    });

    let metrics = srv.metrics();
    assert_eq!(metrics.handler_panics.get(), 20, "every panic is counted");

    // The pool still serves real queries afterwards.
    let mut client = Client::new(addr, Duration::from_secs(5));
    let (status, body) = client.get("/v1/bid?duration=3600").expect("bid after storm");
    assert_eq!(status, 200);
    let doc = server::Json::parse(&String::from_utf8(body).unwrap()).unwrap();
    assert!(
        server::BidQuoteWire::from_json(&doc).is_some(),
        "quote still decodes"
    );

    let report = srv.shutdown();
    assert_eq!(report.admitted, report.served);
    assert_eq!(report.handler_panics, 20);
}

#[test]
fn metrics_exposition_is_byte_identical_across_two_boots() {
    // Two independently booted servers, driven through the identical
    // sequential request sequence, must render byte-identical
    // `/v1/metrics` expositions: every counter — requests per route,
    // cache hits/misses, computes, health transitions, stage span counts
    // — is a pure function of (seed, request sequence) under virtual
    // time. Only `_count` lines are exposed for the span histograms, so
    // wall-clock durations never leak into the body.
    let a = start(81, ServerConfig::default());
    let b = start(81, ServerConfig::default());
    for path in PATHS {
        assert_eq!(raw_get(a.addr(), path), raw_get(b.addr(), path));
    }
    let ea = raw_get(a.addr(), "/v1/metrics");
    let eb = raw_get(b.addr(), "/v1/metrics");
    assert_eq!(ea, eb, "metrics exposition differs across boots");

    let text = String::from_utf8(ea).unwrap();
    // The migrated exposition is a strict superset of the legacy one:
    // old names still present, new families appended.
    for needle in [
        "drafts_requests_total{route=\"graphs\"} 2",
        "drafts_requests_total{route=\"bid\"} 2",
        "drafts_connections_total",
        "drafts_cache_hits_total",
        "drafts_cache_misses_total",
        "drafts_computes_total",
        "drafts_health_transitions_total{to=\"fresh\"} 2",
        "drafts_stage_total_ns_count{stage=\"http_graphs\"} 2",
        "drafts_stage_self_ns_count{stage=\"qbets_price\"}",
        "drafts_pool_tasks_total 0",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    a.shutdown();
    b.shutdown();
}

#[test]
fn slo_and_events_routes_are_byte_identical_across_two_boots() {
    // Two independently booted servers driven through the identical
    // sequential request sequence — crossing a window-interval boundary —
    // must render byte-identical `/v1/slo` and `/v1/_debug/events`
    // bodies: window deltas, burn rates, and event timestamps are all
    // pure functions of (seed, request sequence) under virtual `?now=`.
    let cfg = ServerConfig {
        event_log: 128,
        ..ServerConfig::default()
    };
    let a = start_debug(83, cfg.clone());
    let b = start_debug(83, cfg);
    let drive = |addr: SocketAddr| {
        for path in PATHS {
            raw_get(addr, path);
        }
        raw_get(addr, &format!("/v1/bid?duration=3600&now={}", NOW + 900));
        raw_get(addr, &format!("/v1/slo?now={}", NOW + 900));
    };
    drive(a.addr());
    drive(b.addr());
    for path in [
        format!("/v1/slo?now={}", NOW + 1800),
        "/v1/_debug/events?n=64".to_string(),
        "/v1/_debug/events?n=0".to_string(),
        "/v1/_debug/events?n=100000".to_string(),
        "/v1/_debug/events".to_string(),
    ] {
        assert_eq!(
            raw_get(a.addr(), &path),
            raw_get(b.addr(), &path),
            "response bytes differ for {path}"
        );
    }

    // The zero-fault drive keeps every objective Ok.
    let mut client = Client::new(a.addr(), Duration::from_secs(5));
    let (status, body) = client
        .get(&format!("/v1/slo?now={}", NOW + 1800))
        .expect("slo get");
    assert_eq!(status, 200);
    let doc = server::Json::parse(&String::from_utf8(body).unwrap()).unwrap();
    let slos = doc.get("slos").unwrap().as_arr().unwrap();
    assert_eq!(slos.len(), 3);
    for s in slos {
        assert_eq!(s.get("state").unwrap().as_str(), Some("ok"), "{s:?}");
    }

    // The ring holds the boot-time health transitions (none -> fresh for
    // each combo, stamped with the bucket's virtual time) and no warnings
    // or errors at all.
    let (status, body) = client.get("/v1/_debug/events?n=128").expect("events get");
    assert_eq!(status, 200);
    let doc = server::Json::parse(&String::from_utf8(body).unwrap()).unwrap();
    let events = doc.get("events").unwrap().as_arr().unwrap();
    let transitions: Vec<_> = events
        .iter()
        .filter(|e| e.get("kind").unwrap().as_str() == Some("health_transition"))
        .collect();
    assert_eq!(transitions.len(), 2, "one initial transition per combo");
    for t in &transitions {
        let fields = t.get("fields").unwrap();
        assert_eq!(fields.get("from").unwrap().as_str(), Some("none"));
        assert_eq!(fields.get("to").unwrap().as_str(), Some("fresh"));
        assert_eq!(t.get("now").unwrap().as_u64(), Some(NOW));
    }
    assert!(events
        .iter()
        .all(|e| e.get("level").unwrap().as_str() == Some("info")));

    // Edge cases: n=0 is empty, oversized n returns everything retained,
    // malformed n is a 400.
    let (status, body) = client.get("/v1/_debug/events?n=0").expect("n=0");
    assert_eq!(status, 200);
    let doc = server::Json::parse(&String::from_utf8(body).unwrap()).unwrap();
    assert!(doc.get("events").unwrap().as_arr().unwrap().is_empty());
    let (status, body) = client.get("/v1/_debug/events?n=100000").expect("big n");
    assert_eq!(status, 200);
    let doc = server::Json::parse(&String::from_utf8(body).unwrap()).unwrap();
    assert_eq!(doc.get("capacity").unwrap().as_u64(), Some(128));
    assert!(doc.get("events").unwrap().as_arr().unwrap().len() <= 128);
    let (status, _) = client.get("/v1/_debug/events?n=abc").expect("bad n");
    assert_eq!(status, 400);
    drop(client);

    // Ring disabled: 404 even with debug routes on.
    let plain = start_debug(83, ServerConfig::default());
    let mut client = Client::new(plain.addr(), Duration::from_secs(5));
    let (status, _) = client.get("/v1/_debug/events").expect("disabled get");
    assert_eq!(status, 404, "disabled event ring must 404");
    drop(client);
    plain.shutdown();
    a.shutdown();
    b.shutdown();
}

/// A feed with one fixed outage window over otherwise-clean data.
struct OutageFeed {
    inner: CleanFeed,
    from: u64,
    until: u64,
}

impl FeedSource for OutageFeed {
    fn combo(&self) -> Combo {
        self.inner.combo()
    }
    fn poll(&self, now: u64, attempt: u32) -> Result<Arc<PriceHistory>, FeedError> {
        if (self.from..self.until).contains(&now) {
            Err(FeedError::Outage { until: self.until })
        } else {
            self.inner.poll(now, attempt)
        }
    }
}

#[test]
fn injected_outage_sweep_flips_slos_to_breach_with_events_in_the_ring() {
    let start_outage = |seed: u64| {
        let catalog = Catalog::standard();
        let mut svc = DraftsService::new(ServiceConfig {
            drafts: DraftsConfig {
                changepoint: None,
                autocorr: false,
                duration_stride: 6,
                ..DraftsConfig::default()
            },
            ..ServiceConfig::default()
        });
        let combo = Combo::new(
            Az::parse("us-east-1c").unwrap(),
            catalog.type_id("c3.4xlarge").unwrap(),
        );
        let truth = Arc::new(generate_with_archetype(
            combo,
            catalog,
            &TraceConfig::days(30, seed),
            Archetype::Choppy,
        ));
        svc.register_feed(Arc::new(OutageFeed {
            inner: CleanFeed::new(truth),
            from: NOW,
            until: NOW + 12 * HOUR,
        }));
        let router = Router::new(Arc::new(svc), NOW).with_debug_routes();
        Server::start(
            router,
            ServerConfig {
                event_log: 256,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback")
    };
    let drive = |addr: SocketAddr| -> (Vec<u8>, Vec<u8>) {
        // Sweep virtual time from just before the outage deep into it, in
        // recompute-period steps: fresh -> stale -> unavailable.
        let mut client = Client::new(addr, Duration::from_secs(5));
        for i in 0..=20u64 {
            let now = NOW - 900 + i * 900;
            let (status, _) = client
                .get(&format!("/v1/bid?duration=3600&now={now}"))
                .expect("bid sweep");
            assert_eq!(status, 200, "degraded quotes still serve");
        }
        let slo = client
            .get(&format!("/v1/slo?now={}", NOW + 5 * HOUR))
            .expect("slo get");
        assert_eq!(slo.0, 200);
        let events = client.get("/v1/_debug/events?n=256").expect("events get");
        assert_eq!(events.0, 200);
        (slo.1, events.1)
    };

    let a = start_outage(91);
    let (slo_a, events_a) = drive(a.addr());

    let doc = server::Json::parse(&String::from_utf8(slo_a.clone()).unwrap()).unwrap();
    let slos = doc.get("slos").unwrap().as_arr().unwrap();
    let state_of = |name: &str| {
        slos.iter()
            .find(|s| s.get("name").unwrap().as_str() == Some(name))
            .unwrap()
            .get("state")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    };
    // The single combo is long past its staleness budget: the instant
    // freshness objective breaches, and every quote in the fast window
    // was degraded, so the degraded-fraction objective breaches too.
    assert_eq!(state_of("feed_freshness"), "breach");
    assert_eq!(state_of("bid_degraded"), "breach");
    assert_eq!(state_of("serve_latency"), "ok");

    // The triggering events are all in the ring: the health decay arc,
    // the retry exhaustion, and the SLO transitions themselves.
    let doc = server::Json::parse(&String::from_utf8(events_a.clone()).unwrap()).unwrap();
    let events = doc.get("events").unwrap().as_arr().unwrap();
    let arcs: Vec<(String, String)> = events
        .iter()
        .filter(|e| e.get("kind").unwrap().as_str() == Some("health_transition"))
        .map(|e| {
            let f = e.get("fields").unwrap();
            (
                f.get("from").unwrap().as_str().unwrap().to_string(),
                f.get("to").unwrap().as_str().unwrap().to_string(),
            )
        })
        .collect();
    let arc_strs: Vec<(&str, &str)> =
        arcs.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
    assert_eq!(
        arc_strs,
        [("none", "fresh"), ("fresh", "stale"), ("stale", "unavailable")],
        "health must decay through the full arc exactly once"
    );
    let kinds: Vec<&str> = events
        .iter()
        .map(|e| e.get("kind").unwrap().as_str().unwrap())
        .collect();
    assert!(kinds.contains(&"feed_fault"), "retry exhaustion must log");
    assert!(
        kinds.contains(&"slo_transition"),
        "breach transitions must log"
    );

    // And the whole story replays bit-for-bit on a second boot.
    let b = start_outage(91);
    let (slo_b, events_b) = drive(b.addr());
    assert_eq!(slo_a, slo_b, "slo body differs across boots");
    assert_eq!(events_a, events_b, "event dump differs across boots");
    a.shutdown();
    b.shutdown();
}

#[test]
fn debug_trace_route_serves_the_span_journal() {
    // Journal off: the route 404s even with debug routes enabled.
    let plain = start_debug(82, ServerConfig::default());
    let mut client = Client::new(plain.addr(), Duration::from_secs(5));
    let (status, _) = client.get("/v1/_debug/trace").expect("trace get");
    assert_eq!(status, 404, "journal disabled must 404");
    drop(client);
    plain.shutdown();

    // Journal on: recent closed spans come back oldest-first with their
    // stage labels and wall-clock durations.
    let srv = start_debug(
        82,
        ServerConfig {
            trace_journal: 64,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::new(srv.addr(), Duration::from_secs(5));
    for path in PATHS {
        let (status, _) = client.get(path).expect("warm-up get");
        assert_eq!(status, 200);
    }
    let (status, body) = client.get("/v1/_debug/trace?n=8").expect("trace get");
    assert_eq!(status, 200);
    let doc = server::Json::parse(&String::from_utf8(body).unwrap()).unwrap();
    assert_eq!(doc.get("capacity").unwrap().as_u64(), Some(64));
    let events = doc.get("events").unwrap().as_arr().unwrap();
    assert!(!events.is_empty() && events.len() <= 8);
    let mut prev_seq = None;
    for event in events {
        let stage = event.get("stage").unwrap().as_str().unwrap();
        assert!(
            stage.starts_with("http_")
                || stage.starts_with("svc_")
                || stage.starts_with("qbets_"),
            "unexpected stage {stage}"
        );
        let seq = event.get("seq").unwrap().as_u64().unwrap();
        assert!(prev_seq.is_none_or(|p| seq > p), "events must be oldest-first");
        prev_seq = Some(seq);
    }
    // Per-stage slowest-request exemplars ride along with the journal.
    let exemplars = doc.get("exemplars").unwrap().as_arr().unwrap();
    assert!(!exemplars.is_empty(), "closed stages must expose exemplars");
    for e in exemplars {
        assert!(e.get("stage").unwrap().as_str().is_some());
        let total = e.get("total_ns").unwrap().as_u64().unwrap();
        assert!(total >= e.get("self_ns").unwrap().as_u64().unwrap());
    }

    // Edge cases: n=0 is empty, n beyond the ring capacity returns at
    // most the capacity, malformed n is a 400.
    let (status, body) = client.get("/v1/_debug/trace?n=0").expect("n=0");
    assert_eq!(status, 200);
    let doc = server::Json::parse(&String::from_utf8(body).unwrap()).unwrap();
    assert!(doc.get("events").unwrap().as_arr().unwrap().is_empty());
    let (status, body) = client.get("/v1/_debug/trace?n=100000").expect("big n");
    assert_eq!(status, 200);
    let doc = server::Json::parse(&String::from_utf8(body).unwrap()).unwrap();
    assert!(doc.get("events").unwrap().as_arr().unwrap().len() <= 64);
    let (status, _) = client.get("/v1/_debug/trace?n=abc").expect("bad n");
    assert_eq!(status, 400);
    drop(client);
    srv.shutdown();
}
