//! End-to-end tests of the drafts-serve layer over real loopback sockets:
//! keep-alive concurrency, byte-determinism across independently booted
//! servers, load shedding under a saturated accept queue, graceful drain,
//! and handler-panic isolation.

use drafts_core::predictor::DraftsConfig;
use drafts_core::service::{DraftsService, ServiceConfig};
use spotmarket::archetype::Archetype;
use spotmarket::tracegen::{generate_with_archetype, TraceConfig};
use spotmarket::{Az, Catalog, Combo, DAY};
use loadgen::Client;
use server::{Router, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const NOW: u64 = 20 * DAY;

/// A two-market service, deterministic in `seed`.
fn service(seed: u64) -> DraftsService {
    let catalog = Catalog::standard();
    let mut svc = DraftsService::new(ServiceConfig {
        drafts: DraftsConfig {
            changepoint: None,
            autocorr: false,
            duration_stride: 6,
            ..DraftsConfig::default()
        },
        ..ServiceConfig::default()
    });
    for (i, (az, ty)) in [("us-east-1c", "c3.4xlarge"), ("us-west-2a", "c4.large")]
        .into_iter()
        .enumerate()
    {
        let combo = Combo::new(
            Az::parse(az).unwrap(),
            catalog.type_id(ty).unwrap(),
        );
        svc.register(generate_with_archetype(
            combo,
            catalog,
            &TraceConfig::days(30, seed ^ (i as u64 + 1)),
            Archetype::Choppy,
        ));
    }
    svc
}

fn start(seed: u64, cfg: ServerConfig) -> Server {
    let router = Router::new(Arc::new(service(seed)), NOW);
    Server::start(router, cfg).expect("bind loopback")
}

fn start_debug(seed: u64, cfg: ServerConfig) -> Server {
    let router = Router::new(Arc::new(service(seed)), NOW).with_debug_routes();
    Server::start(router, cfg).expect("bind loopback")
}

/// One raw `Connection: close` round trip; returns the full response
/// bytes, headers included.
fn raw_get(addr: SocketAddr, path: &str) -> Vec<u8> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    conn.set_nodelay(true).unwrap();
    conn.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .expect("send");
    let mut out = Vec::new();
    conn.read_to_end(&mut out).expect("read");
    out
}

const PATHS: [&str; 5] = [
    "/v1/graphs/us-east-1/us-east-1c/c3.4xlarge",
    "/v1/graphs/us-east-1/us-east-1c/c3.4xlarge?p=0.95",
    "/v1/bid?duration=3600&p=0.95",
    "/v1/bid?duration=43200",
    "/v1/health",
];

#[test]
fn concurrent_keepalive_clients_see_identical_bytes_across_two_runs() {
    // Two servers booted independently from the same seed...
    let a = start(77, ServerConfig::default());
    let b = start(77, ServerConfig::default());

    // ...serve byte-identical responses (headers included: no Date, fixed
    // header order, deterministic JSON rendering).
    for path in PATHS {
        assert_eq!(
            raw_get(a.addr(), path),
            raw_get(b.addr(), path),
            "response bytes differ for {path}"
        );
    }

    // Concurrent keep-alive clients: every thread reuses one connection
    // for all paths, and every thread sees the same bodies.
    let addr = a.addr();
    let mut per_thread: Vec<Vec<(u16, Vec<u8>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::new(addr, Duration::from_secs(5));
                    PATHS
                        .iter()
                        .map(|p| client.get(p).expect("keep-alive get"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let first = per_thread.pop().unwrap();
    for other in per_thread {
        assert_eq!(first, other, "threads observed different responses");
    }
    assert!(first.iter().all(|(status, _)| *status == 200));

    let ra = a.shutdown();
    assert_eq!(ra.admitted, ra.served);
    b.shutdown();
}

#[test]
fn saturated_accept_queue_sheds_503_and_never_hangs() {
    let srv = start(
        78,
        ServerConfig {
            workers: 1,
            accept_queue: 1,
            connection_deadline: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    );
    let addr = srv.addr();

    // Pin the single worker: a connection that sends no request holds it
    // until the 300 ms read deadline fires.
    let mut stall = TcpStream::connect(addr).expect("stall connect");
    std::thread::sleep(Duration::from_millis(50));

    // Flood past the one-slot queue. Everything must resolve quickly —
    // either a 200 (the queued slot, served after the stall times out)
    // or an immediate 503 with Retry-After; nothing may hang.
    let results: Vec<(u16, Vec<u8>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::new(addr, Duration::from_secs(5));
                    client.get("/v1/health").expect("flood get resolves")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let shed = results.iter().filter(|(s, _)| *s == 503).count();
    let ok = results.iter().filter(|(s, _)| *s == 200).count();
    assert_eq!(shed + ok, 8, "unexpected statuses: {results:?}");
    assert!(shed >= 1, "flooding a full queue must shed");
    assert!(srv.metrics().shed.get() >= shed as u64);

    // The shed response carries the backoff hint.
    if let Some((_, body)) = results.iter().find(|(s, _)| *s == 503) {
        assert!(
            String::from_utf8_lossy(body).contains("overloaded"),
            "503 body should say overloaded"
        );
    }

    // Late requests succeed once the flood clears.
    let mut client = Client::new(addr, Duration::from_secs(5));
    let waited = obs::Stopwatch::start();
    loop {
        match client.get("/v1/health") {
            Ok((200, _)) => break,
            _ if waited.elapsed() < Duration::from_secs(5) => {
                std::thread::sleep(Duration::from_millis(50))
            }
            other => panic!("server never recovered: {other:?}"),
        }
    }
    stall.write_all(b" ").ok();
    drop(stall);
    let report = srv.shutdown();
    assert_eq!(report.admitted, report.served, "drain dropped admitted work");
}

#[test]
fn graceful_drain_finishes_in_flight_requests() {
    let srv = start(
        79,
        ServerConfig {
            workers: 2,
            connection_deadline: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    );
    let addr = srv.addr();

    // Admit a connection whose request arrives only *after* shutdown has
    // begun: the drain must still serve it, not sever it.
    let mut lagging = TcpStream::connect(addr).expect("connect");
    lagging.set_nodelay(true).unwrap();
    lagging
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(50)); // ensure it is admitted

    let shutdown = std::thread::spawn(move || srv.shutdown());
    std::thread::sleep(Duration::from_millis(100));
    lagging
        .write_all(b"GET /v1/health HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send during drain");
    let mut response = Vec::new();
    lagging.read_to_end(&mut response).expect("read during drain");
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("HTTP/1.1 200 OK\r\n"),
        "in-flight request must complete during drain, got: {text}"
    );
    assert!(
        text.contains("Connection: close"),
        "drain must close keep-alive connections after the response"
    );

    let report = shutdown.join().expect("shutdown thread");
    assert_eq!(report.admitted, report.served, "drain dropped admitted work");
    assert!(report.admitted >= 1);
}

#[test]
fn handler_panics_are_isolated_from_other_connections_and_workers() {
    let srv = start_debug(
        80,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );
    let addr = srv.addr();

    // Hammer the panic route from several threads, interleaved with real
    // traffic on the same worker pool. The shared service state behind
    // `parallel::lock_clean` must stay usable: a panicked handler cannot
    // poison it for anyone else.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(move || {
                let mut client = Client::new(addr, Duration::from_secs(5));
                for _ in 0..5 {
                    let (status, _) =
                        client.get("/v1/_debug/panic").expect("panic route responds");
                    assert_eq!(status, 500, "panic surfaces as 500, not a hang");
                    let (status, _) = client.get("/v1/health").expect("health after panic");
                    assert_eq!(status, 200, "worker must survive the panic");
                }
            });
        }
    });

    let metrics = srv.metrics();
    assert_eq!(metrics.handler_panics.get(), 20, "every panic is counted");

    // The pool still serves real queries afterwards.
    let mut client = Client::new(addr, Duration::from_secs(5));
    let (status, body) = client.get("/v1/bid?duration=3600").expect("bid after storm");
    assert_eq!(status, 200);
    let doc = server::Json::parse(&String::from_utf8(body).unwrap()).unwrap();
    assert!(
        server::BidQuoteWire::from_json(&doc).is_some(),
        "quote still decodes"
    );

    let report = srv.shutdown();
    assert_eq!(report.admitted, report.served);
    assert_eq!(report.handler_panics, 20);
}

#[test]
fn metrics_exposition_is_byte_identical_across_two_boots() {
    // Two independently booted servers, driven through the identical
    // sequential request sequence, must render byte-identical
    // `/v1/metrics` expositions: every counter — requests per route,
    // cache hits/misses, computes, health transitions, stage span counts
    // — is a pure function of (seed, request sequence) under virtual
    // time. Only `_count` lines are exposed for the span histograms, so
    // wall-clock durations never leak into the body.
    let a = start(81, ServerConfig::default());
    let b = start(81, ServerConfig::default());
    for path in PATHS {
        assert_eq!(raw_get(a.addr(), path), raw_get(b.addr(), path));
    }
    let ea = raw_get(a.addr(), "/v1/metrics");
    let eb = raw_get(b.addr(), "/v1/metrics");
    assert_eq!(ea, eb, "metrics exposition differs across boots");

    let text = String::from_utf8(ea).unwrap();
    // The migrated exposition is a strict superset of the legacy one:
    // old names still present, new families appended.
    for needle in [
        "drafts_requests_total{route=\"graphs\"} 2",
        "drafts_requests_total{route=\"bid\"} 2",
        "drafts_connections_total",
        "drafts_cache_hits_total",
        "drafts_cache_misses_total",
        "drafts_computes_total",
        "drafts_health_transitions_total{to=\"fresh\"} 2",
        "drafts_stage_total_ns_count{stage=\"http_graphs\"} 2",
        "drafts_stage_self_ns_count{stage=\"qbets_price\"}",
        "drafts_pool_tasks_total 0",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    a.shutdown();
    b.shutdown();
}

#[test]
fn debug_trace_route_serves_the_span_journal() {
    // Journal off: the route 404s even with debug routes enabled.
    let plain = start_debug(82, ServerConfig::default());
    let mut client = Client::new(plain.addr(), Duration::from_secs(5));
    let (status, _) = client.get("/v1/_debug/trace").expect("trace get");
    assert_eq!(status, 404, "journal disabled must 404");
    drop(client);
    plain.shutdown();

    // Journal on: recent closed spans come back oldest-first with their
    // stage labels and wall-clock durations.
    let srv = start_debug(
        82,
        ServerConfig {
            trace_journal: 64,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::new(srv.addr(), Duration::from_secs(5));
    for path in PATHS {
        let (status, _) = client.get(path).expect("warm-up get");
        assert_eq!(status, 200);
    }
    let (status, body) = client.get("/v1/_debug/trace?n=8").expect("trace get");
    assert_eq!(status, 200);
    let doc = server::Json::parse(&String::from_utf8(body).unwrap()).unwrap();
    assert_eq!(doc.get("capacity").unwrap().as_u64(), Some(64));
    let events = doc.get("events").unwrap().as_arr().unwrap();
    assert!(!events.is_empty() && events.len() <= 8);
    let mut prev_seq = None;
    for event in events {
        let stage = event.get("stage").unwrap().as_str().unwrap();
        assert!(
            stage.starts_with("http_")
                || stage.starts_with("svc_")
                || stage.starts_with("qbets_"),
            "unexpected stage {stage}"
        );
        let seq = event.get("seq").unwrap().as_u64().unwrap();
        assert!(prev_seq.is_none_or(|p| seq > p), "events must be oldest-first");
        prev_seq = Some(seq);
    }
    let (status, _) = client.get("/v1/_debug/trace?n=abc").expect("bad n");
    assert_eq!(status, 400);
    drop(client);
    srv.shutdown();
}
