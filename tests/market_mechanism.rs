//! The mechanistic market and the statistical trace generator are
//! interchangeable substrates for DrAFTS: QBETS bounds computed on the
//! agent-driven clearing prices behave like those on generated traces.

use drafts::forecast::{BoundEstimator, Qbets, QbetsConfig};
use drafts::market::agents::{AgentConfig, AgentMarket};
use drafts::market::market::Market;
use drafts::market::Price;
use drafts::rng::{SeedableFrom, Xoshiro256pp};

#[test]
fn clearing_price_is_lowest_accepted_bid_under_scarcity() {
    let mut m = Market::new(Price::from_ticks(1), 5);
    m.submit(Price::from_dollars(0.50), 2);
    m.submit(Price::from_dollars(0.30), 2);
    m.submit(Price::from_dollars(0.20), 2); // partially filled
    m.submit(Price::from_dollars(0.10), 2); // outbid
    let c = m.clear();
    assert_eq!(c.price, Price::from_dollars(0.20));
    assert_eq!(c.allocated(), 5);
    assert_eq!(c.outbid.len(), 1);
}

#[test]
fn qbets_bound_covers_emergent_prices_forward() {
    let od = Price::from_dollars(0.105);
    let mut market = AgentMarket::new(od, AgentConfig::default(), Xoshiro256pp::seed_from_u64(3));
    let series = market.run(0, 4000);

    // Train on the first 3000 clearings, verify exceedance rate on the rest.
    let mut q = Qbets::new(QbetsConfig {
        changepoint: None,
        ..QbetsConfig::default()
    });
    for &v in &series.values()[..3000] {
        q.observe(v);
    }
    let bound = q.upper_bound(0.95).expect("long history");
    let exceed = series.values()[3000..]
        .iter()
        .filter(|&&v| v > bound)
        .count() as f64
        / 1000.0;
    assert!(
        exceed <= 0.10,
        "95% bound exceeded {exceed} of the time on held-out clearings"
    );
}
