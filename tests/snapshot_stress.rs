//! Multi-threaded stress tests of the lock-free snapshot read path: many
//! reader threads hammering the serving routes must observe byte-identical,
//! health-consistent responses — including while a concurrent writer rolls
//! the service forward through bucket boundaries — and steady-state reads
//! must never enter the slow path (the reader-lock counter stays 0 between
//! snapshot swaps).

use drafts::core::predictor::DraftsConfig;
use drafts::core::service::{DraftsService, ServiceConfig};
use drafts::market::archetype::Archetype;
use drafts::market::tracegen::{generate_with_archetype, TraceConfig};
use drafts::market::{Az, Catalog, Combo, DAY};
use server::http::read_request;
use server::{Metrics, Router};
use std::sync::Arc;
use std::thread;

const READERS: usize = 16;
const T0: u64 = 20 * DAY;

fn combos() -> Vec<Combo> {
    let cat = Catalog::standard();
    [
        ("us-west-2a", "c4.large"),
        ("us-east-1c", "c3.4xlarge"),
        ("us-east-1b", "c3.xlarge"),
    ]
    .iter()
    .map(|&(az, ty)| Combo::new(Az::parse(az).unwrap(), cat.type_id(ty).unwrap()))
    .collect()
}

fn service() -> Arc<DraftsService> {
    let cat = Catalog::standard();
    let mut svc = DraftsService::new(ServiceConfig {
        probabilities: vec![0.95],
        drafts: DraftsConfig {
            changepoint: None,
            autocorr: false,
            duration_stride: 6,
            ..DraftsConfig::default()
        },
        ..ServiceConfig::default()
    });
    for (i, &combo) in combos().iter().enumerate() {
        let archetype = match i % 3 {
            0 => Archetype::Calm,
            1 => Archetype::Choppy,
            _ => Archetype::Spiky,
        };
        svc.register(generate_with_archetype(
            combo,
            cat,
            &TraceConfig::days(30, 0x57AE55 ^ (i as u64 + 1)),
            archetype,
        ));
    }
    Arc::new(svc)
}

/// The request sequence every reader replays, as raw HTTP targets. Mixes
/// the graphs route (per combo, with and without a `p` filter) and the
/// cheapest-bid route, all pinned to the bucket at `now`.
fn targets(now: u64) -> Vec<String> {
    let cat = Catalog::standard();
    let mut t = Vec::new();
    for combo in combos() {
        let (region, az, ty) = (
            combo.az.region().name(),
            combo.az,
            cat.spec(combo.ty).name,
        );
        t.push(format!("/v1/graphs/{region}/{az}/{ty}?now={now}"));
        t.push(format!("/v1/graphs/{region}/{az}/{ty}?p=0.95&now={now}"));
    }
    t.push(format!("/v1/bid?duration=3600&p=0.95&now={now}"));
    t
}

/// Runs one pass of the target sequence through the router in-process and
/// returns the exact response bytes, status first.
fn replay(router: &Router, metrics: &Metrics, now: u64, rounds: usize) -> Vec<(u16, Vec<u8>)> {
    let targets = targets(now);
    let mut out = Vec::with_capacity(targets.len() * rounds);
    for _ in 0..rounds {
        for target in &targets {
            let raw = format!("GET {target} HTTP/1.1\r\n\r\n");
            let req = read_request(&mut std::io::BufReader::new(raw.as_bytes())).unwrap();
            let resp = router.handle(&req, metrics);
            out.push((resp.status, resp.body));
        }
    }
    out
}

#[test]
fn sixteen_steady_readers_get_identical_bytes_without_locking() {
    let svc = service();
    svc.warm(T0);
    let router = Router::new(svc.clone(), T0);
    let locks = svc.read_lock_count();
    let swaps = svc.snapshot_swap_count();

    // The single-threaded reference transcript: warm, so it takes no
    // locks either — it must match what every concurrent reader sees.
    let reference = replay(&router, &Metrics::new(), T0, 1);
    assert!(reference.iter().all(|(s, _)| *s == 200), "non-200 in reference");

    let transcripts: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| scope.spawn(|| replay(&router, &Metrics::new(), T0, 40)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for transcript in &transcripts {
        for (i, got) in transcript.iter().enumerate() {
            assert_eq!(
                got,
                &reference[i % reference.len()],
                "reader response diverged from the reference at step {i}"
            );
        }
    }
    // Health consistency: every served body carries the fresh, guaranteed
    // state (byte-identity above makes this a single check).
    let body = String::from_utf8(reference[0].1.clone()).unwrap();
    assert!(body.contains("\"state\":\"fresh\""), "unexpected health in {body}");

    // The acceptance gate: a steady-state read storm never enters the
    // slow path and never republishes.
    assert_eq!(svc.read_lock_count(), locks, "steady readers took a lock");
    assert_eq!(svc.snapshot_swap_count(), swaps, "steady readers republished");
}

#[test]
fn readers_survive_concurrent_bucket_rollover_byte_for_byte() {
    let svc = service();
    let period = ServiceConfig::default().recompute_period;
    svc.warm(T0);
    let router = Router::new(svc.clone(), T0);
    let reference = replay(&router, &Metrics::new(), T0, 1);
    let locks_before = svc.read_lock_count();
    let rollovers = 4u64;
    let roll_combo = combos()[0];

    let transcripts: Vec<_> = thread::scope(|scope| {
        // The writer: rolls one combo forward through four bucket
        // boundaries while the readers hammer the original bucket. Each
        // new bucket is one slow-path build + snapshot swap; the old
        // bucket stays resident (within the retention window) and its
        // published bytes must not move.
        let roller = scope.spawn(|| {
            for step in 1..=rollovers {
                let now = T0 + step * period;
                svc.fetch(roll_combo, now).expect("rolled bucket serves");
            }
        });
        let handles: Vec<_> = (0..READERS)
            .map(|_| scope.spawn(|| replay(&router, &Metrics::new(), T0, 40)))
            .collect();
        let transcripts = handles.into_iter().map(|h| h.join().unwrap()).collect();
        roller.join().unwrap();
        transcripts
    });

    for transcript in &transcripts {
        for (i, got) in transcript.iter().enumerate() {
            assert_eq!(
                got,
                &reference[i % reference.len()],
                "rollover perturbed a resident bucket's bytes at step {i}"
            );
        }
    }

    // Exactly the roller's four first-touch misses took the lock: the
    // sixteen readers contributed zero slow-path entries even while the
    // snapshots were being republished under them.
    assert_eq!(
        svc.read_lock_count() - locks_before,
        rollovers,
        "readers entered the slow path during rollover"
    );

    // And once the new bucket is warm, reads settle back to lock-free:
    // the counter stays 0 between swaps.
    let t4 = T0 + rollovers * period;
    svc.warm(t4);
    let locks_warm = svc.read_lock_count();
    let swaps_warm = svc.snapshot_swap_count();
    let new_reference = replay(&router, &Metrics::new(), t4, 1);
    assert!(new_reference.iter().all(|(s, _)| *s == 200));
    thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| scope.spawn(|| replay(&router, &Metrics::new(), t4, 20)))
            .collect();
        for h in handles {
            for (i, got) in h.join().unwrap().iter().enumerate() {
                assert_eq!(got, &new_reference[i % new_reference.len()]);
            }
        }
    });
    assert_eq!(svc.read_lock_count(), locks_warm, "post-rollover reads locked");
    assert_eq!(svc.snapshot_swap_count(), swaps_warm);
}
