//! End-to-end pipeline: trace generation -> DrAFTS prediction -> post-facto
//! verification, plus whole-pipeline determinism.

use drafts::backtesting::engine::{self, BacktestConfig, Policy};
use drafts::core::predictor::{DraftsConfig, DraftsPredictor};
use drafts::market::{tracegen, Az, Catalog, Combo, DAY, HOUR};

#[test]
fn predict_and_verify_on_one_market() {
    let catalog = Catalog::standard();
    let combo = Combo::new(
        Az::parse("us-west-2b").unwrap(),
        catalog.type_id("m3.large").unwrap(),
    );
    let history = tracegen::generate(combo, catalog, &tracegen::TraceConfig::days(40, 3));
    let predictor = DraftsPredictor::new(&history, DraftsConfig::default());

    let mut verified = 0;
    let mut total = 0;
    for day in 20..36 {
        let now = day * DAY;
        let upto = history.series().index_at(now).unwrap();
        let quote = predictor.bid_quote(upto, 0.95, 2 * HOUR);
        total += 1;
        if history.survival(now, quote.bid).survives_for(now, 2 * HOUR) {
            verified += 1;
        }
    }
    assert_eq!(total, 16);
    assert!(
        verified >= 15,
        "2-hour holds at p = 0.95 should essentially always verify, got {verified}/16"
    );
}

#[test]
fn full_backtest_is_deterministic_end_to_end() {
    let cfg = BacktestConfig {
        days: 40,
        warmup_days: 16,
        requests_per_combo: 25,
        combo_limit: Some(5),
        probability: 0.95,
        ..BacktestConfig::default()
    };
    let a = engine::run(&cfg);
    let b = engine::run(&cfg);
    assert_eq!(a.combos.len(), b.combos.len());
    for (x, y) in a.combos.iter().zip(&b.combos) {
        assert_eq!(x.combo, y.combo);
        assert_eq!(x.outcomes, y.outcomes);
        assert_eq!(x.savings, y.savings);
        assert_eq!(x.tightness_sum.to_bits(), y.tightness_sum.to_bits());
    }
}

#[test]
fn drafts_dominates_every_baseline_in_aggregate() {
    let cfg = BacktestConfig {
        days: 45,
        warmup_days: 18,
        requests_per_combo: 40,
        combo_limit: Some(12),
        probability: 0.95,
        ..BacktestConfig::default()
    };
    let result = engine::run(&cfg);
    let mean = |p: Policy| {
        result
            .combos
            .iter()
            .map(|c| c.outcome(p).fraction())
            .sum::<f64>()
            / result.combos.len() as f64
    };
    let drafts = mean(Policy::Drafts);
    assert!(drafts >= 0.93, "aggregate DrAFTS fraction {drafts}");
    for p in [Policy::OnDemand, Policy::Ar1, Policy::EmpiricalCdf] {
        assert!(
            drafts >= mean(p),
            "{:?} beats DrAFTS in aggregate ({} vs {drafts})",
            p,
            mean(p)
        );
    }
}
